module Prng = Tsj_util.Prng

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

(* A request written to a server that already hung up must surface as
   EPIPE (an [Error] from {!request}) — never as a process-killing
   SIGPIPE.  Not available on Windows, hence the guard. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let connect ?timeout_s addr =
  ignore_sigpipe ();
  let sock_addr, domain =
    match addr with
    | Protocol.Unix_path path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
    | Protocol.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      (Unix.ADDR_INET (inet, port), Unix.PF_INET)
  in
  match Unix.socket domain Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
    (match timeout_s with
    | Some s when s > 0.0 ->
      (* Socket-level timeouts so a hung server cannot hang the client:
         a late reply surfaces as a transport error and the retry layer
         takes over. *)
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
    | _ -> ());
    match Unix.connect fd sock_addr with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "connect %s: %s" (Protocol.addr_to_string addr)
           (Unix.error_message e))
    | () ->
      Ok { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd })

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let channels t = (t.ic, t.oc)

let fd t = t.fd

let request t ?deadline_ms req =
  match
    output_string t.oc (Protocol.render_request_d ?deadline_ms req);
    output_char t.oc '\n';
    flush t.oc;
    input_line t.ic
  with
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_error msg -> Error msg
  | exception Sys_blocked_io -> Error "receive timeout"
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | line -> Protocol.parse_response line

(* Full-jitter exponential backoff: attempt [i] sleeps a uniform draw
   from [cap/2, cap] with cap = base * 2^i clamped to [max_delay_s].
   The jitter source is an explicit SplitMix64 state and the sleep is
   injectable, so tests replay the exact schedule deterministically. *)
let backoff_delay ~base_delay_s ~max_delay_s ~rng attempt =
  let cap = Float.min max_delay_s (base_delay_s *. Float.pow 2.0 (float_of_int attempt)) in
  cap *. (0.5 +. 0.5 *. Prng.float rng)

(* A [deadline_s] caps the total wall-clock time spent waiting between
   attempts: each sleep is clamped to the time remaining, and once the
   deadline has passed the last result is returned instead of retrying
   further.  [now] is injectable so tests drive the clock.  A [budget]
   gates every retry (successes fund it, see {!Admission.Retry_budget});
   [delay_floor] is re-read before each sleep so a BUSY retry-after
   hint can raise the next delay without touching the backoff state. *)
let with_retries ?(attempts = 4) ?(base_delay_s = 0.05) ?(max_delay_s = 2.0)
    ?(sleep = Unix.sleepf) ?deadline_s ?(now = Tsj_util.Timer.now) ?budget
    ?(delay_floor = fun () -> 0.0) ~rng f =
  if attempts < 1 then invalid_arg "Client.with_retries: attempts must be >= 1";
  let t0 = now () in
  let remaining () =
    match deadline_s with None -> infinity | Some d -> d -. (now () -. t0)
  in
  let rec go attempt =
    match f () with
    | Ok _ as r ->
      (match budget with
      | Some b -> Admission.Retry_budget.on_success b
      | None -> ());
      r
    | Error _ as e ->
      if attempt + 1 >= attempts then e
      else if
        match budget with
        | Some b -> not (Admission.Retry_budget.try_retry b)
        | None -> false
      then e
      else begin
        let delay =
          Float.max (delay_floor ())
            (backoff_delay ~base_delay_s ~max_delay_s ~rng attempt)
        in
        let left = remaining () in
        if left <= 0.0 then e
        else begin
          sleep (Float.min delay left);
          go (attempt + 1)
        end
      end
  in
  go 0

(* One-shot request with reconnect-and-retry.  [BUSY] counts as a
   retryable failure (the shedding server asked us to back off), but is
   returned as-is once attempts are exhausted rather than masked as an
   error.  A BUSY retry-after hint floors the next backoff sleep; a
   [deadline_ms] is re-derived before every attempt (entry budget minus
   wall clock spent so far), so the server sees a monotonically
   shrinking remaining budget across retries. *)
let request_with_retries ?attempts ?base_delay_s ?max_delay_s ?sleep ?deadline_s ?now
    ?timeout_s ?budget ?deadline_ms ~rng addr req =
  let now_fn = match now with Some f -> f | None -> Tsj_util.Timer.now in
  let t0 = now_fn () in
  let send_deadline () =
    match deadline_ms with
    | None -> None
    | Some ms ->
      let elapsed_ms = Admission.Deadline.of_span_s (now_fn () -. t0) in
      Some (Admission.Deadline.after_hop ~elapsed_ms ms)
  in
  let last_busy = ref false in
  let last_hint = ref None in
  let result =
    with_retries ?attempts ?base_delay_s ?max_delay_s ?sleep ?deadline_s ?now ?budget
      ~delay_floor:(fun () ->
        match !last_hint with
        | Some ms -> Admission.Deadline.to_span_s ms
        | None -> 0.0)
      ~rng
      (fun () ->
        last_busy := false;
        last_hint := None;
        match connect ?timeout_s addr with
        | Error _ as e -> e
        | Ok conn ->
          let r = request conn ?deadline_ms:(send_deadline ()) req in
          close conn;
          (match r with
          | Ok (Protocol.Busy { retry_after_ms }) ->
            last_busy := true;
            last_hint := retry_after_ms;
            Error "busy"
          | _ -> r))
  in
  match result with
  | Error _ when !last_busy -> Ok (Protocol.Busy { retry_after_ms = !last_hint })
  | r -> r

(* --- failover across a server list --- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

module Failover = struct
  type nonrec t = {
    servers : Protocol.addr array;
    mutable current : int;
    timeout_s : float option;
    attempts : int;
    base_delay_s : float;
    max_delay_s : float;
    deadline_s : float option;
    sleep : float -> unit;
    now : unit -> float;
    rng : Prng.t;
  }

  let create ?(attempts = 8) ?(base_delay_s = 0.02) ?(max_delay_s = 1.0)
      ?(sleep = Unix.sleepf) ?deadline_s ?(now = Tsj_util.Timer.now) ?timeout_s ~rng
      servers =
    if servers = [] then invalid_arg "Client.Failover.create: empty server list";
    {
      servers = Array.of_list servers;
      current = 0;
      timeout_s;
      attempts;
      base_delay_s;
      max_delay_s;
      deadline_s;
      sleep;
      now;
      rng;
    }

  let current t = t.servers.(t.current)

  let rotate t = t.current <- (t.current + 1) mod Array.length t.servers

  (* A bounded-staleness redirect names the primary: jump straight to it
     when it is in our server list, otherwise just rotate. *)
  let follow_redirect t addr =
    let found = ref false in
    Array.iteri
      (fun i a ->
        if (not !found) && Protocol.addr_to_string a = addr then begin
          t.current <- i;
          found := true
        end)
      t.servers;
    if not !found then rotate t

  (* Replies that mean "this server cannot take the request, another
     one might": a fenced (demoted or never-primary) node, admission
     shedding, and a drain in progress. *)
  let retryable = function
    | Protocol.Fenced _ | Protocol.Busy _ -> true
    | Protocol.Err reason -> contains ~sub:"draining" reason
    | _ -> false

  let request t ?deadline_ms req =
    let t0 = t.now () in
    let remaining () =
      match t.deadline_s with None -> infinity | Some d -> d -. (t.now () -. t0)
    in
    (* Re-derived before every attempt: the budget announced to each
       server shrinks by the wall clock already burned on earlier
       attempts and backoff sleeps. *)
    let send_deadline () =
      match deadline_ms with
      | None -> None
      | Some ms ->
        let elapsed_ms = Admission.Deadline.of_span_s (t.now () -. t0) in
        Some (Admission.Deadline.after_hop ~elapsed_ms ms)
    in
    (* [attempt] bounds the total tries; [backoff] is the exponent of
       the next delay and is tracked separately so it can RESET once a
       rotation reaches a server that answers at all.  A well-formed
       reply — even FENCED or BUSY — is proof the cluster is back:
       probing the remaining servers at the accumulated max-backoff
       cadence would make a recovered cluster look seconds slower than
       it is.  Only transport failures keep growing the exponent. *)
    let rec go attempt backoff =
      let result =
        match connect ?timeout_s:t.timeout_s (current t) with
        | Error _ as e -> e
        | Ok conn ->
          let r = request conn ?deadline_ms:(send_deadline ()) req in
          close conn;
          r
      in
      let retry ~backoff last =
        if attempt + 1 >= t.attempts then last
        else begin
          rotate t;
          let floor_s =
            match result with
            | Ok (Protocol.Busy { retry_after_ms = Some ms }) ->
              Admission.Deadline.to_span_s ms
            | _ -> 0.0
          in
          let delay =
            Float.max floor_s
              (backoff_delay ~base_delay_s:t.base_delay_s
                 ~max_delay_s:t.max_delay_s ~rng:t.rng backoff)
          in
          let left = remaining () in
          if left <= 0.0 then last
          else begin
            t.sleep (Float.min delay left);
            go (attempt + 1) (backoff + 1)
          end
        end
      in
      match result with
      | Error _ as e -> retry ~backoff e
      | Ok (Protocol.Redirect addr) ->
        (* No backoff: the redirect names a live primary.  Attempts and
           the deadline still bound the chase. *)
        if attempt + 1 >= t.attempts || remaining () <= 0.0 then result
        else begin
          follow_redirect t addr;
          go (attempt + 1) 0
        end
      | Ok resp when retryable resp -> retry ~backoff:0 result
      | r -> r
    in
    go 0 0

  (* The safe-retry ADD of the idempotency contract: learn the next
     sequence number from the server's STATS, attach it, and keep
     retrying {e with the same seq} across transport failures and
     failovers — the store's seq-skip answers duplicates, and a seq
     bound to a different tree (a competing writer, or a stale read
     from a lagging replica) refetches and tries again. *)
  let add ?(seq_retries = 4) t tree =
    let rec go tries =
      if tries <= 0 then Error "ADD: seq negotiation attempts exhausted"
      else
        match request t Protocol.Stats with
        | Error _ as e -> e
        | Ok (Protocol.Stats_reply s) -> (
          match request t (Protocol.Add { seq = Some s.trees; tree }) with
          | Ok (Protocol.Err reason)
            when contains ~sub:"already bound" reason
                 || contains ~sub:"seq gap" reason ->
            go (tries - 1)
          | r -> r)
        | Ok other -> Ok other
    in
    go seq_retries
end

(* --- binary protocol client --- *)

module Bin = struct
  type conn = t

  type nonrec t = { conn : conn; mutable next_id : int; version : int }

  (* Negotiate the binary protocol on a fresh text connection: one
     [HELLO BIN <v>] line each way, then frames. *)
  let handshake conn =
    match
      output_string conn.oc (Protocol.Binary.hello Protocol.Binary.version);
      output_char conn.oc '\n';
      flush conn.oc;
      input_line conn.ic
    with
    | exception End_of_file -> Error "connection closed during HELLO"
    | exception Sys_error msg -> Error msg
    | exception Sys_blocked_io -> Error "receive timeout"
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | line -> (
      match Protocol.parse_response line with
      | Ok (Protocol.Hello_reply v) when v >= 1 -> Ok v
      | Ok r -> Error ("unexpected HELLO reply: " ^ Protocol.render_response r)
      | Error msg -> Error msg)

  let connect ?timeout_s addr =
    match connect ?timeout_s addr with
    | Error m -> Error m
    | Ok conn -> (
      match handshake conn with
      | Error e ->
        close conn;
        Error e
      | Ok v -> Ok { conn; next_id = 0; version = v })

  let close t = close t.conn

  let version t = t.version

  (* Queue one request frame (buffered; {!flush} pushes the batch).
     Returns the request id its reply will carry.  Frames are encoded
     at the negotiated version, so a deadline sent to a v1 server is
     silently dropped rather than corrupting the frame layout. *)
  let send t ?max_lag ?deadline_ms req =
    let id = t.next_id in
    t.next_id <- id + 1;
    let b = Buffer.create 64 in
    Protocol.Binary.encode_request b ~id ?max_lag ?deadline_ms ~version:t.version
      req;
    output_string t.conn.oc (Buffer.contents b);
    id

  let flush t = flush t.conn.oc

  (* Read exactly one reply frame: [(id, response)].  Replies to
     pipelined requests arrive in whatever order they finished. *)
  let recv t =
    match
      let hdr = really_input_string t.conn.ic 4 in
      let flen = Protocol.Binary.get_u32 hdr 0 in
      if flen < 5 then failwith "malformed frame from server"
      else begin
        let rest = really_input_string t.conn.ic flen in
        (Protocol.Binary.get_u32 rest 0, Char.code rest.[4], String.sub rest 5 (flen - 5))
      end
    with
    | exception End_of_file -> Error "connection closed by server"
    | exception Sys_error msg -> Error msg
    | exception Sys_blocked_io -> Error "receive timeout"
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | exception Failure msg -> Error msg
    | id, op, body -> (
      match Protocol.Binary.decode_response ~op ~body with
      | Ok resp -> Ok (id, resp)
      | Error _ as e -> e)

  (* Lock-step round trip; replies to other outstanding pipelined
     requests are discarded while waiting. *)
  let request t ?max_lag ?deadline_ms req =
    let id = send t ?max_lag ?deadline_ms req in
    flush t;
    let rec await () =
      match recv t with
      | Error _ as e -> e
      | Ok (rid, resp) when rid = id -> Ok resp
      | Ok _ -> await ()
    in
    await ()
end
