(** Hash-consed subtree DAG store.

    Interning a tree maps every distinct subtree to one immutable
    {!node} with a stable id, so a collection dominated by repeated
    subtrees (the common case — see the self-nested-trees literature)
    collapses to a DAG whose resident set shrinks by the redundancy
    factor.  Structural equality of interned subtrees is id equality:
    children are interned bottom-up, so the collision check on a hash
    bucket only compares the label and the child ids, which is exact by
    induction.  The [tree] view of a node shares substructure with
    every other node, so structurally equal subtrees are also
    physically equal ([==]) — the cheap equality the kernels and the
    store-level dedup exploit.

    Ids are allocated from one process-wide counter: ids from distinct
    stores never collide, which keeps the per-domain TED memo cache
    (keyed by id pairs, surviving across joins) sound.

    Like {!Label}, a store is not synchronized — intern from one domain
    at a time.  The interned nodes themselves are immutable and safe to
    share across domains. *)

type node = private {
  id : int;             (** globally unique; equal iff subtrees equal *)
  label : Label.t;
  children : node array;
  size : int;           (** number of nodes in the subtree *)
  hash : int;
  tree : Tree.t;        (** shared structural view *)
}

type t

val create : ?hash_bits:int -> unit -> t
(** A fresh empty store.  [hash_bits] truncates the structural hash to
    that many bits — a test hook that forces bucket collisions to
    exercise the collision-checked equality; production stores use the
    full hash.  @raise Invalid_argument if outside [1..62]. *)

val intern : t -> Tree.t -> node
(** [intern t tree] returns the unique node for [tree], creating nodes
    for any subtrees not seen before.  O(size) hash lookups. *)

val find : t -> Tree.t -> node option
(** Read-only lookup: the node for [tree] if every subtree of it is
    already interned, [None] otherwise.  Never mutates the store, so it
    is safe concurrently with reads (not with {!intern}). *)

val tree : node -> Tree.t

val id : node -> int

val size : node -> int

val n_nodes : t -> int
(** Distinct subtree nodes created by this store. *)

val interned : t -> int
(** Total subtree intern requests (the sum of interned tree sizes);
    [interned / n_nodes] is the sharing factor. *)

val sharing : t -> float
(** [interned t / n_nodes t] — mean occurrences per distinct subtree. *)
