(* Hash-consed subtree store: every distinct subtree of every interned
   tree gets exactly one immutable node, found by structural hashing
   with collision-checked equality.  Because children are interned
   before their parent, two subtrees are structurally equal iff their
   node ids are equal, so the shallow check (same label, same child
   ids) is exact — no deep comparison ever runs after the leaves.

   Node ids are drawn from a process-wide atomic counter, never from a
   per-store one: the TED memo cache (see [Tsj_ted.Memo]) is keyed by
   id pairs and lives per domain for the whole process, outliving any
   single collection, so ids from different stores must never alias.

   Like [Label], the intern table is not synchronized: call [intern]
   only from one domain at a time (joins intern sequentially before
   fanning out; the parallel phases only read the resulting nodes). *)

type node = {
  id : int;          (* globally unique across all stores *)
  label : Label.t;
  children : node array;
  size : int;        (* nodes in the subtree *)
  hash : int;        (* structural hash, already masked *)
  tree : Tree.t;     (* shared view: equal subtrees are [==] *)
}

type t = {
  table : (int, node list) Hashtbl.t; (* hash -> bucket *)
  mask : int;
  mutable distinct : int; (* nodes created by this store *)
  mutable total : int;    (* subtree intern requests (sum of tree sizes) *)
}

let next_id = Atomic.make 0

let create ?hash_bits () =
  let mask =
    match hash_bits with
    | None -> max_int
    | Some b ->
      if b < 1 || b > 62 then invalid_arg "Dag.create: hash_bits must be in 1..62";
      (1 lsl b) - 1
  in
  { table = Hashtbl.create 1024; mask; distinct = 0; total = 0 }

let hash_parts t label children =
  let h =
    Array.fold_left (fun acc c -> (acc * 1000003) + c.id + 1) (label + 17) children
  in
  h land max_int land t.mask

let same_node label children n =
  n.label = label
  &&
  let nc = n.children in
  let len = Array.length children in
  Array.length nc = len
  &&
  let i = ref 0 in
  while
    !i < len && (Array.unsafe_get nc !i).id = (Array.unsafe_get children !i).id
  do
    incr i
  done;
  !i = len

(* The interning pass walks every node of every added tree, so this
   lookup is the hot path: scan the bucket with a bare loop (no closure,
   no option) before falling back to node construction. *)
let rec find_in_bucket label children = function
  | [] -> None
  | n :: rest ->
    if same_node label children n then Some n
    else find_in_bucket label children rest

let intern_node t label (children : node array) =
  t.total <- t.total + 1;
  let h = hash_parts t label children in
  let bucket = try Hashtbl.find t.table h with Not_found -> [] in
  match find_in_bucket label children bucket with
  | Some n -> n
  | None ->
    let size = Array.fold_left (fun acc c -> acc + c.size) 1 children in
    let tree =
      { Tree.label; children = Array.to_list (Array.map (fun c -> c.tree) children) }
    in
    let n =
      { id = Atomic.fetch_and_add next_id 1; label; children; size; hash = h; tree }
    in
    Hashtbl.replace t.table h (n :: bucket);
    t.distinct <- t.distinct + 1;
    n

let rec intern t (tr : Tree.t) =
  let children = Array.of_list (List.map (intern t) tr.children) in
  intern_node t tr.label children

let rec find t (tr : Tree.t) =
  match
    List.fold_left
      (fun acc c ->
        match acc with
        | None -> None
        | Some kids -> (
          match find t c with Some n -> Some (n :: kids) | None -> None))
      (Some []) tr.children
  with
  | None -> None
  | Some rev_kids ->
    let children = Array.of_list (List.rev rev_kids) in
    let h = hash_parts t tr.label children in
    let bucket = Option.value (Hashtbl.find_opt t.table h) ~default:[] in
    List.find_opt (same_node tr.label children) bucket

let tree n = n.tree

let id n = n.id

let size n = n.size

let n_nodes t = t.distinct

let interned t = t.total

let sharing t = if t.distinct = 0 then 1.0 else float_of_int t.total /. float_of_int t.distinct
