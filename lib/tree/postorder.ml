type t = {
  size : int;
  labels : int array;
  lld : int array;
  parent : int array;
  keyroots : int array;
  dag : int array;
}

(* A node is an LR-keyroot iff no proper ancestor shares its lld; i.e. it
   is the highest node of its left path.  Equivalently: the root, plus
   every node that is not the leftmost child of its parent. *)
let keyroots_of n lld parent =
  let acc = Tsj_util.Vec_int.create () in
  for i = 0 to n - 1 do
    let p = parent.(i) in
    if p = -1 || lld.(p) <> lld.(i) then Tsj_util.Vec_int.push acc i
  done;
  Tsj_util.Vec_int.to_array acc

let of_tree tree =
  let n = Tree.size tree in
  let labels = Array.make n 0 in
  let lld = Array.make n 0 in
  let parent = Array.make n (-1) in
  let counter = ref 0 in
  (* Returns (postorder id, leftmost leaf descendant id) of the visited
     subtree root. *)
  let rec go (node : Tree.t) =
    let children = List.map go node.children in
    let me = !counter in
    incr counter;
    labels.(me) <- node.label;
    List.iter (fun (c, _) -> parent.(c) <- me) children;
    let my_lld = match children with [] -> me | (_, first_lld) :: _ -> first_lld in
    lld.(me) <- my_lld;
    (me, my_lld)
  in
  ignore (go tree);
  { size = n; labels; lld; parent; keyroots = keyroots_of n lld parent; dag = [||] }

let of_dag (root : Dag.node) =
  let n = Dag.size root in
  let labels = Array.make n 0 in
  let lld = Array.make n 0 in
  let parent = Array.make n (-1) in
  let dag = Array.make n 0 in
  let counter = ref 0 in
  let rec go (node : Dag.node) =
    let k = Array.length node.Dag.children in
    let first_lld = ref (-1) in
    let child_ids = Array.make k 0 in
    for c = 0 to k - 1 do
      let cid, clld = go node.Dag.children.(c) in
      child_ids.(c) <- cid;
      if c = 0 then first_lld := clld
    done;
    let me = !counter in
    incr counter;
    labels.(me) <- node.Dag.label;
    dag.(me) <- node.Dag.id;
    Array.iter (fun c -> parent.(c) <- me) child_ids;
    let my_lld = if k = 0 then me else !first_lld in
    lld.(me) <- my_lld;
    (me, my_lld)
  in
  ignore (go root);
  { size = n; labels; lld; parent; keyroots = keyroots_of n lld parent; dag }

let n_leaves t =
  let count = ref 0 in
  for i = 0 to t.size - 1 do
    if t.lld.(i) = i then incr count
  done;
  !count

let subtree_size t i = i - t.lld.(i) + 1

let keyroot_cost t =
  Array.fold_left (fun acc k -> acc + subtree_size t k) 0 t.keyroots
