(** Compact postorder array form of a general tree.

    This is the input representation of the Zhang–Shasha TED algorithm:
    nodes are identified with their 0-based postorder numbers, and the
    leftmost-leaf-descendant array [lld] plus the LR-keyroots drive the
    dynamic program. *)

type t = {
  size : int;
  labels : int array;    (** [labels.(i)]: label of postorder node [i] *)
  lld : int array;       (** leftmost leaf descendant of node [i] *)
  parent : int array;    (** parent postorder number; [-1] for the root *)
  keyroots : int array;  (** LR-keyroots in ascending order *)
  dag : int array;       (** [dag.(i)]: {!Dag} node id of the subtree rooted
                             at postorder node [i]; [[||]] when built by
                             {!of_tree} (unconsed) *)
}

val of_tree : Tree.t -> t
(** Array form without DAG annotations ([dag = [||]]). *)

val of_dag : Dag.node -> t
(** Array form of an interned tree: identical to [of_tree (Dag.tree n)]
    except that [dag] carries the subtree node ids, which unlock the
    equal-subtree fast path and the cross-pair memo cache in the TED
    kernels. *)

val n_leaves : t -> int

val subtree_size : t -> int -> int
(** [subtree_size p i] is [i - lld.(i) + 1], the number of nodes in the
    subtree rooted at postorder node [i]. *)

val keyroot_cost : t -> int
(** [Σ_{k ∈ keyroots} subtree_size k] — the per-tree factor of the number
    of relevant subproblems Zhang–Shasha solves; the hybrid TED strategy
    compares this between the left-path and right-path decompositions. *)
