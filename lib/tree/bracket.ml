let needs_escape c = c = '{' || c = '}' || c = '\\'

let escape_label s =
  if String.exists needs_escape s then begin
    let b = Buffer.create (String.length s + 4) in
    String.iter
      (fun c ->
        if needs_escape c then Buffer.add_char b '\\';
        Buffer.add_char b c)
      s;
    Buffer.contents b
  end
  else s

let to_string t =
  let b = Buffer.create 64 in
  let rec go (t : Tree.t) =
    Buffer.add_char b '{';
    Buffer.add_string b (escape_label (Label.name t.label));
    List.iter go t.children;
    Buffer.add_char b '}'
  in
  go t;
  Buffer.contents b

(* Parse errors carry the byte offset of the offending character; the
   public entry points format it as a 1-based line/column so callers can
   point the user at the record, not a raw byte offset. *)
exception Parse_error of int * string

type cursor = { input : string; mutable pos : int }

let error cur msg = raise (Parse_error (cur.pos, msg))

let describe input pos msg =
  Printf.sprintf "%s: %s" (Tsj_util.Text.describe_pos input pos) msg

let peek cur =
  if cur.pos < String.length cur.input then Some cur.input.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      go ()
    | Some '#' ->
      (* comment until end of line *)
      let rec eat () =
        match peek cur with
        | Some '\n' | None -> ()
        | Some _ ->
          advance cur;
          eat ()
      in
      eat ();
      go ()
    | _ -> ()
  in
  go ()

let parse_label cur =
  let b = Buffer.create 8 in
  let rec go () =
    match peek cur with
    | Some '\\' ->
      advance cur;
      (match peek cur with
      | Some c ->
        Buffer.add_char b c;
        advance cur;
        go ()
      | None -> error cur "dangling escape character")
    | Some ('{' | '}') | None -> ()
    | Some c ->
      Buffer.add_char b c;
      advance cur;
      go ()
  in
  go ();
  let s = Buffer.contents b in
  if s = "" then error cur "empty label";
  Label.intern s

let rec parse_tree cur =
  (match peek cur with
  | Some '{' -> advance cur
  | Some c -> error cur (Printf.sprintf "expected '{', found %C" c)
  | None -> error cur "expected '{', found end of input");
  let label = parse_label cur in
  let children = ref [] in
  let rec kids () =
    match peek cur with
    | Some '{' ->
      children := parse_tree cur :: !children;
      kids ()
    | Some '}' -> advance cur
    | Some c -> error cur (Printf.sprintf "expected '{' or '}', found %C" c)
    | None -> error cur "unterminated tree: expected '}'"
  in
  kids ();
  Tree.node label (List.rev !children)

let of_string s =
  let cur = { input = s; pos = 0 } in
  match
    skip_ws cur;
    let t = parse_tree cur in
    skip_ws cur;
    if cur.pos < String.length s then error cur "trailing garbage after tree";
    t
  with
  | t -> Ok t
  | exception Parse_error (pos, msg) -> Error (describe s pos msg)

let of_string_exn s =
  match of_string s with
  | Ok t -> t
  | Error msg -> invalid_arg ("Bracket.of_string_exn: " ^ msg)

let forest_of_string s =
  let cur = { input = s; pos = 0 } in
  match
    let acc = ref [] in
    let rec go () =
      skip_ws cur;
      match peek cur with
      | None -> ()
      | Some _ ->
        acc := parse_tree cur :: !acc;
        go ()
    in
    go ();
    List.rev !acc
  with
  | ts -> Ok ts
  | exception Parse_error (pos, msg) -> Error (describe s pos msg)

(* Lenient forest parse: on a malformed record, report its 1-based
   line/column and resynchronize at the start of the next line.  Records
   spanning multiple lines lose the spilled lines too — acceptable for
   the record-per-line corpora this serves. *)
let forest_of_string_lenient s =
  let cur = { input = s; pos = 0 } in
  let trees = ref [] in
  let errors = ref [] in
  let resync_next_line from =
    let next =
      match String.index_from_opt s from '\n' with
      | Some nl -> nl + 1
      | None -> String.length s
    in
    (* Always make progress, even on an error at a line boundary. *)
    cur.pos <- max next (from + 1)
  in
  let rec go () =
    skip_ws cur;
    match peek cur with
    | None -> ()
    | Some _ -> (
      match parse_tree cur with
      | t ->
        trees := t :: !trees;
        go ()
      | exception Parse_error (pos, msg) ->
        let line, col = Tsj_util.Text.line_col s pos in
        errors := (line, col, msg) :: !errors;
        resync_next_line pos;
        if cur.pos < String.length s then go ())
  in
  go ();
  (List.rev !trees, List.rev !errors)

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> forest_of_string contents
  | exception Sys_error msg -> Error msg

let load_file_lenient path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> Ok (forest_of_string_lenient contents)
  | exception Sys_error msg -> Error msg

let save_file path trees =
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun t ->
          Out_channel.output_string oc (to_string t);
          Out_channel.output_char oc '\n')
        trees)
