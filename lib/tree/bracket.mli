(** Bracket notation for trees — the interchange format used throughout the
    TED literature (and by the RTED reference implementation):
    [{a{b{c}}{d}}] is a root [a] with children [b] (itself parent of [c])
    and [d].

    Labels may contain any characters except unescaped braces; [\{], [\}]
    and [\\] escape a literal brace/backslash. *)

val to_string : Tree.t -> string

val of_string : string -> (Tree.t, string) result
(** Parses exactly one tree (surrounding whitespace allowed); the error
    string starts with the 1-based ["line L, column C"] of the offending
    character, followed by the cause. *)

val of_string_exn : string -> Tree.t
(** @raise Invalid_argument on a parse error. *)

val forest_of_string : string -> (Tree.t list, string) result
(** Parses zero or more whitespace-separated trees.  Fails on the first
    malformed record, with its line/column. *)

val forest_of_string_lenient : string -> Tree.t list * (int * int * string) list
(** Best-effort forest parse for dirty corpora: malformed records are
    skipped and reported as [(line, column, message)] (1-based) instead
    of failing the whole load.  After an error the parser resynchronizes
    at the start of the next line, so a multi-line record loses its
    spilled lines too.  The error list is in input order. *)

val load_file : string -> (Tree.t list, string) result
(** One or more trees per file, whitespace/newline separated.  Lines whose
    first non-blank character is [#] are comments. *)

val load_file_lenient : string -> (Tree.t list * (int * int * string) list, string) result
(** {!forest_of_string_lenient} over a file; [Error] only for I/O
    failures. *)

val save_file : string -> Tree.t list -> unit
(** One tree per line. *)
