type t = { label : Label.t; children : t list }

let leaf label = { label; children = [] }

let node label children = { label; children }

let rec size t = List.fold_left (fun acc c -> acc + size c) 1 t.children

let rec depth t =
  1 + List.fold_left (fun acc c -> max acc (depth c)) 0 t.children

let rec degree t =
  List.fold_left (fun acc c -> max acc (degree c)) (List.length t.children) t.children

let label_set t =
  let module S = Set.Make (Int) in
  let rec go acc t = List.fold_left go (S.add t.label acc) t.children in
  S.elements (go S.empty t)

(* Physical equality short-circuits both: trees interned through [Dag]
   share substructure, so equal subtrees of a consed collection compare
   in O(1) instead of O(size). *)
let rec equal a b =
  a == b || (a.label = b.label && List.equal equal a.children b.children)

let rec compare a b =
  if a == b then 0
  else
    let c = Stdlib.compare a.label b.label in
    if c <> 0 then c else List.compare compare a.children b.children

let rec hash t =
  List.fold_left (fun acc c -> (acc * 1000003) + hash c) (t.label + 17) t.children

let rec map_labels f t =
  { label = f t.label; children = List.map (map_labels f) t.children }

let rec mirror t = { t with children = List.rev_map mirror t.children }

let rec fold f t = f t.label (List.map (fold f) t.children)

let rec iter_preorder f t =
  f t;
  List.iter (iter_preorder f) t.children

let rec iter_postorder f t =
  List.iter (iter_postorder f) t.children;
  f t

let nodes_postorder t =
  let acc = ref [] in
  iter_postorder (fun n -> acc := n :: !acc) t;
  Array.of_list (List.rev !acc)

let nodes_preorder t =
  let acc = ref [] in
  iter_preorder (fun n -> acc := n :: !acc) t;
  Array.of_list (List.rev !acc)

let subtree_at_postorder t i =
  let nodes = nodes_postorder t in
  if i < 0 || i >= Array.length nodes then
    invalid_arg "Tree.subtree_at_postorder: index out of range";
  nodes.(i)

let rec pp fmt t =
  Format.fprintf fmt "{%s" (Label.name t.label);
  List.iter (pp fmt) t.children;
  Format.fprintf fmt "}"

let pp_ascii fmt t =
  let rec go prefix is_last t =
    Format.fprintf fmt "%s%s%s@." prefix
      (if prefix = "" then "" else if is_last then "└─ " else "├─ ")
      (Label.name t.label);
    let child_prefix =
      if prefix = "" then " "
      else prefix ^ (if is_last then "   " else "│  ")
    in
    let rec each = function
      | [] -> ()
      | [ c ] -> go child_prefix true c
      | c :: rest ->
        go child_prefix false c;
        each rest
    in
    each t.children
  in
  go "" true t
