(** Fault-injection registry for resilience testing.

    Library code marks interesting failure points with
    [Fault_inject.hit "some.point" payload]; tests arm a point to make
    that call raise {!Injected} (or run an arbitrary action, e.g. cancel
    a budget) and then assert that the surrounding machinery degrades
    gracefully — quarantines the work item, keeps the domain pool
    usable, resumes from a checkpoint, and so on.

    When nothing is armed a hit is one atomic load, so the hooks are
    free in production.  Hits may fire concurrently from worker domains;
    arming/disarming is meant to happen from the test driver only. *)

exception Injected of string
(** Raised by an armed {!hit}; carries the point's key. *)

val hit : string -> int -> unit
(** [hit key payload] does nothing unless [key] is armed.  The payload
    identifies the work item (block index, tree id, batch slot) so a
    test can target e.g. "the third block" precisely. *)

val arm : string -> ?at:int -> unit -> unit
(** Arm [key] to raise [Injected key]: on every hit, or only when the
    hit's payload equals [at]. *)

val arm_action : string -> (int -> unit) -> unit
(** Arm [key] to run an arbitrary action with the hit's payload (e.g.
    [fun _ -> Budget.cancel b] to simulate budget exhaustion mid-run). *)

val disarm : string -> unit

val disarm_all : unit -> unit

val hits : string -> int
(** Number of times [key] was hit while armed (since process start). *)

val with_armed : string -> ?at:int -> (unit -> 'a) -> 'a
(** [with_armed key ?at f] arms, runs [f], and always disarms. *)
