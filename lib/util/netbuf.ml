type t = { mutable buf : Bytes.t; mutable off : int; mutable len : int }

let create ?(capacity = 4096) () = { buf = Bytes.create (max 16 capacity); off = 0; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let clear t =
  t.off <- 0;
  t.len <- 0

(* Make room for [n] more bytes: first slide the live region back to the
   start (reclaiming consumed space), then grow geometrically if that is
   still not enough.  Amortized O(1) per byte through the buffer. *)
let reserve t n =
  let cap = Bytes.length t.buf in
  if t.off + t.len + n > cap then begin
    if t.len > 0 && t.off > 0 then Bytes.blit t.buf t.off t.buf 0 t.len;
    t.off <- 0;
    if t.len + n > cap then begin
      let cap' = ref (max 16 cap) in
      while t.len + n > !cap' do
        cap' := !cap' * 2
      done;
      let buf' = Bytes.create !cap' in
      Bytes.blit t.buf 0 buf' 0 t.len;
      t.buf <- buf'
    end
  end

let add_subbytes t src pos n =
  reserve t n;
  Bytes.blit src pos t.buf (t.off + t.len) n;
  t.len <- t.len + n

let add_string t s =
  let n = String.length s in
  reserve t n;
  Bytes.blit_string s 0 t.buf (t.off + t.len) n;
  t.len <- t.len + n

let add_char t c =
  reserve t 1;
  Bytes.set t.buf (t.off + t.len) c;
  t.len <- t.len + 1

let peek t = (t.buf, t.off, t.len)

let consume t n =
  if n < 0 || n > t.len then invalid_arg "Netbuf.consume";
  t.off <- t.off + n;
  t.len <- t.len - n;
  if t.len = 0 then t.off <- 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Netbuf.get";
  Bytes.get t.buf (t.off + i)

let index t c =
  let rec go i = if i >= t.len then None else if get t i = c then Some i else go (i + 1) in
  go 0

let sub_string t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Netbuf.sub_string";
  Bytes.sub_string t.buf (t.off + pos) len

let u32_be t pos =
  if pos < 0 || pos + 4 > t.len then invalid_arg "Netbuf.u32_be";
  Int32.to_int (Bytes.get_int32_be t.buf (t.off + pos)) land 0xFFFFFFFF
