(** Growable byte FIFO for event-loop connection buffers.

    One [t] per direction per connection: bytes read off a nonblocking
    socket are appended at the tail, complete lines/frames are parsed
    off the head and {!consume}d; likewise rendered replies are appended
    and whatever [write(2)] accepted is consumed.  Consumed space is
    reclaimed by sliding (not reallocating) whenever the next append
    needs it, so a long-lived connection settles into a steady-state
    buffer with no per-request allocation.

    Not thread-safe; callers (the server's event loop and its worker
    threads) serialize access per buffer. *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int

val is_empty : t -> bool

val clear : t -> unit

val add_subbytes : t -> Bytes.t -> int -> int -> unit
(** [add_subbytes t src pos n] appends [src[pos .. pos+n-1]]. *)

val add_string : t -> string -> unit

val add_char : t -> char -> unit

val peek : t -> Bytes.t * int * int
(** [(buf, off, len)]: a view of the buffered bytes, valid only until
    the next mutation of [t].  Pair with {!consume} after a write. *)

val consume : t -> int -> unit
(** Drop [n] bytes off the head.  @raise Invalid_argument if [n]
    exceeds {!length}. *)

val get : t -> int -> char
(** Byte at offset [i] from the head (no consumption). *)

val index : t -> char -> int option
(** Offset of the first occurrence of a byte, e.g. the newline ending a
    complete request line. *)

val sub_string : t -> pos:int -> len:int -> string
(** Copy of a region, without consuming it. *)

val u32_be : t -> int -> int
(** Big-endian unsigned 32-bit integer at offset [pos] — the length and
    request-id fields of a binary frame header. *)
