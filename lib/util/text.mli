(** Small text utilities shared by the parsers and the checkpoint
    journal. *)

val line_col : string -> int -> int * int
(** [line_col s pos] is the 1-based (line, column) of byte offset [pos]
    in [s].  [pos] is clamped to [0 .. length s]. *)

val describe_pos : string -> int -> string
(** ["line L, column C"] for {!line_col} — the format every parser error
    message uses. *)

val fnv1a64 : string -> int64
(** FNV-1a 64-bit hash — checksums for corruption detection, not
    cryptography. *)

val fnv1a64_hex : string -> string
(** {!fnv1a64} as a 16-digit lowercase hex string. *)
