let line_col s pos =
  let pos = max 0 (min pos (String.length s)) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to pos - 1 do
    if s.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, pos - !bol + 1)

let describe_pos s pos =
  let line, col = line_col s pos in
  Printf.sprintf "line %d, column %d" line col

(* FNV-1a, 64-bit.  Used for checkpoint integrity and dataset
   fingerprints: collision resistance against accidental corruption and
   accidental dataset swaps, not against adversaries. *)
let fnv1a64 s =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let fnv1a64_hex s = Printf.sprintf "%016Lx" (fnv1a64 s)
