type fault = {
  f_op : [ `Write | `Fsync | `Rename | `Read ];
  f_path : string;
  f_detail : string;
}

exception Disk_fault of fault

let fault_to_string f =
  let op =
    match f.f_op with
    | `Write -> "write"
    | `Fsync -> "fsync"
    | `Rename -> "rename"
    | `Read -> "read"
  in
  Printf.sprintf "disk fault: %s %s: %s" op f.f_path f.f_detail

(* A tmp+rename is only atomic *in the namespace*: the rename itself
   lives in the parent directory's metadata and can be lost by a power
   cut unless the directory is fsynced.  Real failures are swallowed —
   some filesystems (and all of Windows) refuse fsync on a directory fd,
   and a failed fsync must not turn a successful save into an error.
   The injected [durable.fsync] fault is the exception: it models a disk
   that reported the failure, and propagates. *)
let fsync_dir dir =
  Fault_inject.hit "durable.fsync" 0;
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let rename src dst =
  (match Sys.rename src dst with
  | () -> ()
  | exception Sys_error msg ->
    raise (Disk_fault { f_op = `Rename; f_path = dst; f_detail = msg })
  | exception Unix.Unix_error (e, _, _) ->
    raise (Disk_fault { f_op = `Rename; f_path = dst; f_detail = Unix.error_message e }));
  fsync_dir (Filename.dirname dst)

(* The write is split around the hit point so an armed fault observes a
   true short write: the first half is already buffered (and is forced
   to the file before the fault propagates — a reopening reader must see
   the torn bytes, exactly as after a power cut mid-append), the second
   half never happens. *)
let append_line ~path oc line =
  let n = String.length line in
  let k = n / 2 in
  try
    output_string oc (String.sub line 0 k);
    (try Fault_inject.hit "durable.write" n
     with e ->
       (try flush oc with Sys_error _ -> ());
       raise e);
    output_string oc (String.sub line k (n - k));
    output_char oc '\n'
  with Sys_error msg -> raise (Disk_fault { f_op = `Write; f_path = path; f_detail = msg })

let flush_channel ~path oc =
  Fault_inject.hit "durable.fsync" 0;
  try flush oc
  with Sys_error msg -> raise (Disk_fault { f_op = `Fsync; f_path = path; f_detail = msg })

(* --- read side --- *)

(* Deterministic read-side bit rot: while armed, every {!read_file}
   flips exactly one bit of the returned contents, chosen by a SplitMix64
   walk from the arming seed — re-arming with the same seed replays the
   same flips in the same order.  The flip happens in the returned copy
   only; the file on disk is untouched, which is precisely what silent
   media corruption looks like to a reader. *)
let bitflip_mutex = Mutex.create ()

let bitflip_state : int64 option ref = ref None

let arm_bitflip ~seed =
  Mutex.lock bitflip_mutex;
  bitflip_state := Some (Int64.of_int seed);
  Mutex.unlock bitflip_mutex

let disarm_bitflip () =
  Mutex.lock bitflip_mutex;
  bitflip_state := None;
  Mutex.unlock bitflip_mutex

let splitmix64 s =
  let ( +% ) = Int64.add and ( *% ) = Int64.mul in
  let z = s +% 0x9E3779B97F4A7C15L in
  let z = Int64.logxor z (Int64.shift_right_logical z 30) *% 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) *% 0x94D049BB133111EBL in
  (z +% 0x9E3779B97F4A7C15L, Int64.logxor z (Int64.shift_right_logical z 31))

let next_bitflip () =
  Mutex.lock bitflip_mutex;
  let r =
    match !bitflip_state with
    | None -> None
    | Some s ->
      let s', v = splitmix64 s in
      bitflip_state := Some s';
      Some (Int64.to_int (Int64.logand v Int64.max_int))
  in
  Mutex.unlock bitflip_mutex;
  r

let read_file path =
  Fault_inject.hit "durable.read" 0;
  let contents =
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error msg ->
      raise (Disk_fault { f_op = `Read; f_path = path; f_detail = msg })
    | c -> c
  in
  match next_bitflip () with
  | Some draw when String.length contents > 0 ->
    let bit = draw mod (String.length contents * 8) in
    Fault_inject.hit "durable.bitflip" bit;
    let b = Bytes.of_string contents in
    let i = bit / 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
    Bytes.unsafe_to_string b
  | _ -> contents
