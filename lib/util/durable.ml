type fault = {
  f_op : [ `Write | `Fsync | `Rename ];
  f_path : string;
  f_detail : string;
}

exception Disk_fault of fault

let fault_to_string f =
  let op =
    match f.f_op with `Write -> "write" | `Fsync -> "fsync" | `Rename -> "rename"
  in
  Printf.sprintf "disk fault: %s %s: %s" op f.f_path f.f_detail

(* A tmp+rename is only atomic *in the namespace*: the rename itself
   lives in the parent directory's metadata and can be lost by a power
   cut unless the directory is fsynced.  Real failures are swallowed —
   some filesystems (and all of Windows) refuse fsync on a directory fd,
   and a failed fsync must not turn a successful save into an error.
   The injected [durable.fsync] fault is the exception: it models a disk
   that reported the failure, and propagates. *)
let fsync_dir dir =
  Fault_inject.hit "durable.fsync" 0;
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let rename src dst =
  (match Sys.rename src dst with
  | () -> ()
  | exception Sys_error msg ->
    raise (Disk_fault { f_op = `Rename; f_path = dst; f_detail = msg })
  | exception Unix.Unix_error (e, _, _) ->
    raise (Disk_fault { f_op = `Rename; f_path = dst; f_detail = Unix.error_message e }));
  fsync_dir (Filename.dirname dst)

(* The write is split around the hit point so an armed fault observes a
   true short write: the first half is already buffered (and is forced
   to the file before the fault propagates — a reopening reader must see
   the torn bytes, exactly as after a power cut mid-append), the second
   half never happens. *)
let append_line ~path oc line =
  let n = String.length line in
  let k = n / 2 in
  try
    output_string oc (String.sub line 0 k);
    (try Fault_inject.hit "durable.write" n
     with e ->
       (try flush oc with Sys_error _ -> ());
       raise e);
    output_string oc (String.sub line k (n - k));
    output_char oc '\n'
  with Sys_error msg -> raise (Disk_fault { f_op = `Write; f_path = path; f_detail = msg })

let flush_channel ~path oc =
  Fault_inject.hit "durable.fsync" 0;
  try flush oc
  with Sys_error msg -> raise (Disk_fault { f_op = `Fsync; f_path = path; f_detail = msg })
