(* A tmp+rename is only atomic *in the namespace*: the rename itself
   lives in the parent directory's metadata and can be lost by a power
   cut unless the directory is fsynced.  Failures are swallowed — some
   filesystems (and all of Windows) refuse fsync on a directory fd, and
   a failed fsync must not turn a successful save into an error. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let rename src dst =
  Sys.rename src dst;
  fsync_dir (Filename.dirname dst)
