exception Injected of string

(* Fast path: a single atomic load when nothing is armed, so the hit
   points sprinkled through the join hot paths cost nothing in
   production.  The registry itself is mutex-protected because hits can
   fire concurrently from worker domains. *)
let armed_count = Atomic.make 0

type action = Raise_at of int option | Call of (int -> unit)

let registry : (string, action) Hashtbl.t = Hashtbl.create 8

let mutex = Mutex.create ()

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let counters : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 8

let counter key =
  with_lock (fun () ->
      match Hashtbl.find_opt counters key with
      | Some c -> c
      | None ->
        let c = Atomic.make 0 in
        Hashtbl.add counters key c;
        c)

let arm key ?at () =
  with_lock (fun () ->
      if not (Hashtbl.mem registry key) then Atomic.incr armed_count;
      Hashtbl.replace registry key (Raise_at at))

let arm_action key f =
  with_lock (fun () ->
      if not (Hashtbl.mem registry key) then Atomic.incr armed_count;
      Hashtbl.replace registry key (Call f))

let disarm key =
  with_lock (fun () ->
      if Hashtbl.mem registry key then begin
        Hashtbl.remove registry key;
        Atomic.decr armed_count
      end)

let disarm_all () =
  with_lock (fun () ->
      Hashtbl.reset registry;
      Atomic.set armed_count 0)

let hits key =
  match with_lock (fun () -> Hashtbl.find_opt counters key) with
  | Some c -> Atomic.get c
  | None -> 0

let hit key payload =
  if Atomic.get armed_count > 0 then begin
    (* Look up under the lock, act outside it: actions raise. *)
    let action = with_lock (fun () -> Hashtbl.find_opt registry key) in
    match action with
    | None -> ()
    | Some a -> (
      Atomic.incr (counter key);
      match a with
      | Raise_at None -> raise (Injected key)
      | Raise_at (Some at) -> if payload = at then raise (Injected key)
      | Call f -> f payload)
  end

let with_armed key ?at f =
  arm key ?at ();
  Fun.protect ~finally:(fun () -> disarm key) f
