(** Crash-durable filesystem operations.

    A tmp-write + [Sys.rename] makes a save {e atomic} (readers see the
    old or the new file, never a torn one) but not {e durable}: the
    rename is directory metadata, and a machine crash shortly after can
    roll it back, silently losing the "committed" file.  Durability
    requires fsyncing the parent directory after the rename — that is
    the one step this module adds.

    {b Typed disk faults.}  Every operation that can observe a failing
    disk reports it as {!Disk_fault} — never a raw [Unix.Unix_error] or
    [Sys_error] — so callers ({!Tsj_server.Store},
    {!Tsj_join.Checkpoint}) can match on the one exception that means
    "the storage layer failed" and turn it into their own typed error.

    {b Fault injection.}  Two {!Tsj_util.Fault_inject} hit points model
    the classic disk failures:

    - [durable.write] fires once per {!append_line}, {e between} the
      first and second half of the payload (payload = line length).  An
      armed action that raises models a {b short write}: the prefix is
      already in the channel buffer (and is pushed to the file before
      the exception propagates), the suffix is lost — exactly the torn
      journal tail a power cut leaves behind.  Raise
      {!Tsj_util.Fault_inject.Injected} to model a crash, or
      {!Disk_fault} to model an I/O error the process survives.
    - [durable.fsync] fires once per {!flush_channel} and once per
      {!fsync_dir}, before the flush/fsync (payload = 0).  An armed
      action raising {!Disk_fault} models [EIO] on fsync — the
      "fsyncgate" failure where the kernel reports lost writes.
    - [durable.read] fires once per {!read_file}, before the read
      (payload = 0).  An armed action raising {!Disk_fault} models
      [EIO] on read; a plain {!Tsj_util.Fault_inject.arm} models a
      crash while reading.
    - [durable.bitflip] fires once per bit actually flipped by an armed
      {!arm_bitflip} (payload = the flipped bit's offset), so tests can
      count or intercept the injected rot.  The flip itself is armed
      through {!arm_bitflip}, not the registry: it must {e return
      corrupted data}, which a raising hit point cannot. *)

type fault = {
  f_op : [ `Write | `Fsync | `Rename | `Read ];
  f_path : string;  (** the file (or directory) the operation targeted *)
  f_detail : string;  (** the underlying error text *)
}

exception Disk_fault of fault

val fault_to_string : fault -> string
(** ["disk fault: <op> <path>: <detail>"] — the error text callers embed
    in their own [Error] results. *)

val fsync_dir : string -> unit
(** Fsync a directory so a preceding rename/create/unlink inside it
    survives a machine crash.  Real filesystem refusals are swallowed
    (some filesystems refuse to fsync a directory fd, and a failed
    directory fsync must not turn a successful save into an error), but
    an injected [durable.fsync] fault propagates — tests model a disk
    that {e reported} the failure. *)

val rename : string -> string -> unit
(** [rename src dst]: [Sys.rename] followed by {!fsync_dir} on [dst]'s
    parent.  @raise Disk_fault if the rename itself fails (or an
    injected fsync fault fires). *)

val append_line : path:string -> out_channel -> string -> unit
(** Append [line ^ "\n"] to a channel opened on [path].  The
    [durable.write] hit point fires mid-payload (see above); on an
    injected fault the prefix already written is flushed to the file
    first, so the torn bytes are observable by a reopening reader.
    @raise Disk_fault on a write error. *)

val flush_channel : path:string -> out_channel -> unit
(** Force the channel's buffer to the file — the durability point of a
    journal append.  The [durable.fsync] hit point fires first.
    @raise Disk_fault on a flush error. *)

val read_file : string -> string
(** Read a whole file through the fault-injectable path: the
    [durable.read] hit point fires first, and an armed {!arm_bitflip}
    corrupts exactly one bit of the {e returned} contents (the file is
    untouched — silent media rot as a reader sees it).  Every durable
    consumer (journal replay, ledger load, snapshot read, scrub) reads
    through here so read-side faults reach them all.
    @raise Disk_fault on a read error (a missing file included). *)

val arm_bitflip : seed:int -> unit
(** Arm deterministic read-side bit rot: each subsequent {!read_file}
    flips one bit of its result, positions drawn from a SplitMix64 walk
    seeded with [seed] — re-arming with the same seed replays the same
    corruption sequence.  Fires [durable.bitflip] per flip. *)

val disarm_bitflip : unit -> unit
