(** Crash-durable filesystem operations.

    A tmp-write + [Sys.rename] makes a save {e atomic} (readers see the
    old or the new file, never a torn one) but not {e durable}: the
    rename is directory metadata, and a machine crash shortly after can
    roll it back, silently losing the "committed" file.  Durability
    requires fsyncing the parent directory after the rename — that is
    the one step this module adds. *)

val fsync_dir : string -> unit
(** Fsync a directory so a preceding rename/create/unlink inside it
    survives a machine crash.  Never raises: on filesystems that refuse
    to fsync a directory fd this degrades to the pre-fix behaviour. *)

val rename : string -> string -> unit
(** [rename src dst]: [Sys.rename] followed by {!fsync_dir} on [dst]'s
    parent.  Raises as [Sys.rename] does if the rename itself fails. *)
