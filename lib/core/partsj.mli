(** PartSJ — the paper's partition-based tree similarity self-join
    (Algorithm 1, the method called PRT in the evaluation).

    Trees are processed in ascending size order.  For the current tree
    [Ti], the subgraphs of previously processed trees with size in
    [|Ti| - τ .. |Ti|] are probed through the per-size two-layer indexes:
    every node [N] of [Ti] selects only the subgraphs whose postorder
    group and twig key are compatible with [N]; a selected subgraph that
    actually matches makes its container tree a candidate, verified once
    with the exact TED.  Finally [Ti] itself is partitioned into
    [δ = 2τ + 1] balanced subgraphs and inserted into the index — the
    index is built on-the-fly, there is no offline phase.

    Trees with fewer than [δ] nodes cannot be δ-partitioned (a tree of
    [n] nodes has only [n - 1] edges); they are kept in per-size overflow
    lists and treated as always-candidates within the size window, which
    preserves completeness (such trees have at most [2τ] nodes, so they
    are both rare and cheap to verify).

    {b Parallel execution.}  With [domains > 1] the join runs its three
    phases on the shared work-stealing pool of {!Tsj_join.Pool}:
    preprocessing compiles every tree in parallel up front; the sweep
    processes trees in fixed-size blocks, probing each block against a
    {!Two_layer_index.frozen} read-only snapshot concurrently while the
    {e previous} block's candidates are verified on the same pool
    (software pipelining), followed by a short sequential phase that
    probes intra-block pairs and inserts the block's subgraphs.  The
    block size is a constant, independent of [domains], and every task
    is a pure function of immutable preprocessed data, so the candidate
    stream, the result pairs and all statistics are bit-identical at
    every domain count — parallelism changes only the wall clock.

    {b Resilient execution.}  The join degrades gracefully instead of
    failing or running away:

    - a tree whose preprocessing raises is {e quarantined}
      ({!Tsj_join.Types.Preprocess_failed}) — it joins in no pair but the
      rest of the collection is processed normally;
    - with a {!Tsj_join.Budget}, a candidate pair whose exact-kernel cost
      estimate exceeds the per-pair limit is quarantined with its bound
      sandwich ({!Tsj_join.Types.Pair_budget}), and a wall-clock expiry or
      {!Tsj_join.Budget.cancel} drains the pool cooperatively at the next
      chunk boundary, quarantining every unprocessed pair and tree
      ({!Tsj_join.Types.Deadline}) — the shared pool stays reusable;
    - a verifier exception quarantines the pair
      ({!Tsj_join.Types.Verify_failed}) instead of killing the join.

    The soundness contract: [output.pairs] never contains a false
    positive, and [pairs ∪ quarantined] covers the ground truth — every
    true result pair is either reported exactly or accounted for in the
    quarantine record.

    {b Checkpoint/resume.}  With a {!Tsj_join.Checkpoint.config} the join
    journals its accumulated outputs after every [every] completed blocks
    (atomically — a kill mid-save never tears the journal); with
    [resume:true] it loads the journal, replays the indexing of the
    completed blocks (consuming the partitioning RNG in the original
    order) and continues mid-sweep.  The resumed run's pairs, quarantine
    records and deterministic counters are bit-identical to an
    uninterrupted run, at every domain count. *)

type partitioning =
  | Balanced          (** max-min-size partitioning (Section 3.3) *)
  | Random of int     (** seeded random bridging edges — ablation *)

type phase_times = {
  prep_wall_s : float;   (** parallel preprocessing wall time *)
  sweep_wall_s : float;  (** pipelined candidate + verify sweep wall time *)
  total_wall_s : float;
  domains_used : int;
}
(** Wall-clock phase split reported through [on_phases] — the
    machine-readable counterpart of the attributed per-phase stats (with
    pipelining, candidate and verification work overlap in wall time, so
    [candidate_time_s + verify_time_s] of {!Tsj_join.Types.stats} can
    exceed [sweep_wall_s] on several domains). *)

val join :
  ?partitioning:partitioning ->
  ?index_mode:Two_layer_index.mode ->
  ?domains:int ->
  ?bounded_verify:bool ->
  ?cascade:bool ->
  ?consing:bool ->
  ?metric:Tsj_join.Sweep.metric ->
  ?budget:Tsj_join.Budget.t ->
  ?checkpoint:Tsj_join.Checkpoint.config ->
  ?on_phases:(phase_times -> unit) ->
  trees:Tsj_tree.Tree.t array ->
  tau:int ->
  unit ->
  Tsj_join.Types.output
(** @raise Invalid_argument if [tau < 0], [domains < 1], or a
    [checkpoint] with [resume:true] names a journal that is corrupt or
    was written by a different dataset/configuration.  [index_mode]
    defaults to the sound {!Two_layer_index.Two_sided} windows; with
    {!Two_layer_index.Paper_rank} the join is faster but may miss result
    pairs (see {!Two_layer_index}).  [domains] (default 1) runs the whole
    join — preprocessing, block-parallel candidate generation and
    pipelined verification — on that many OCaml domains; the result is
    identical at every count.  [metric] swaps the verifier (default:
    unrestricted TED); any metric that never underestimates TED — e.g.
    {!Tsj_ted.Constrained} — keeps the subgraph filter {e and} the bound
    cascade lossless, realizing the paper's "other tree distance metrics"
    future-work point.  [bounded_verify] (default [true]) verifies with
    the τ-banded DP; pass [false] to force the full cubic verifier with
    no prefilter (ablation).  [cascade] (default [true]) runs the staged
    filter cascade of {!Tsj_ted.Bounds.Compiled} in front of the kernel:
    precompiled lower bounds cheapest-first with short-circuit
    (size → label histogram → degree histogram → banded traversal SED),
    then the greedy-mapping upper bound, which early-accepts a pair whose
    bound sandwich closes and otherwise shrinks the kernel band below τ.
    Every stage is lossless, so pairs {e and} distances are bit-identical
    with the cascade on or off; [cascade:false] restores the seed
    verifier (banded preorder-SED prefilter + τ-banded kernel) for
    before/after benchmarking.  [consing] (default [true]) hash-conses
    every tree into a per-join {!Tsj_tree.Dag} store before the fan-out:
    structurally equal subtrees share one node, the kernels answer
    equal-subtree pairs without running the DP, and the τ-banded kernel
    consults the cross-pair keyroot memo cache ({!Tsj_ted.Memo}) — the
    cache traffic is reported in [stats.cascade.memo_hits]/[memo_misses].
    Consing never changes pairs, distances, or any deterministic counter
    ({!Tsj_join.Types.equal_deterministic} holds across [consing]
    on/off); [consing:false] is the before/after ablation switch.  Per-stage decisions are reported in
    [stats.cascade]; the counters (including [quarantined]) partition the
    candidate set.  [budget] enables the resilience limits and
    [checkpoint] the progress journal described above.  In the reported
    stats, preprocessing is charged to verification (as before) and
    pipelined task times are attributed to their phase. *)

type probe_stats = {
  n_probed : int;        (** subgraphs returned by index probes *)
  n_matched : int;       (** probed subgraphs that matched *)
  n_small_tree_hits : int; (** candidates from the sub-δ overflow lists *)
  n_subgraphs_indexed : int;
}

val join_with_probe_stats :
  ?partitioning:partitioning ->
  ?index_mode:Two_layer_index.mode ->
  ?domains:int ->
  ?bounded_verify:bool ->
  ?cascade:bool ->
  ?consing:bool ->
  ?metric:Tsj_join.Sweep.metric ->
  ?budget:Tsj_join.Budget.t ->
  ?checkpoint:Tsj_join.Checkpoint.config ->
  ?on_phases:(phase_times -> unit) ->
  trees:Tsj_tree.Tree.t array ->
  tau:int ->
  unit ->
  Tsj_join.Types.output * probe_stats
(** Same join, also reporting index-behaviour counters (used by the
    ablation benches and tests).  The counters are deterministic: every
    parallel task counts its own deterministic probe sequence and the
    sums are order-independent. *)
