(** The two-layer subgraph index of Section 3.4.

    One index instance holds the subgraphs of all already-processed trees
    of one size [n] (the inverted list [I_n] of Algorithm 1).  Layer 1
    groups subgraphs by postorder position keys; layer 2 subdivides each
    group by the label twig key of {!Subgraph.label_key}.  Probing for
    node [N] of the current tree looks up layer 1 with [N]'s position and
    layer 2 with the four twig keys compatible with [N] (exact child
    labels and [ε] wildcards).

    {b Postorder windows.}  The paper registers subgraph [s_k] (rank [k],
    root postorder [p_k]) under keys [p_k ± (τ - ⌊k/2⌋)].  Our property
    tests found concrete inputs where these windows lose matches that the
    join needs (operations positioned before the subgraph shift its image
    by up to [τ], and the paper's "an earlier subgraph will be selected
    instead" fallback does not always apply) — so that variant,
    {!Paper_rank}, is kept only for ablation.  The default {!Two_sided}
    mode is provably complete: over a script of at most [τ] node edit
    operations, the start-relative shift of an untouched subgraph equals
    the number of insert/delete operations positioned before it and the
    end-relative shift the number positioned after it; the two sum to at
    most [τ], so at least one is at most [⌊τ/2⌋].  Registering every
    subgraph under both coordinates with half-width [⌊τ/2⌋] windows and
    probing both tables therefore never misses an untouched subgraph,
    with selectivity comparable to the paper's scheme. *)

type mode =
  | Two_sided   (** sound two-coordinate windows (default) *)
  | Paper_rank  (** the paper's rank-tightened windows; may miss matches *)
  | Label_only  (** ablation: disable the postorder layer entirely (sound
                    but less selective) *)

type t

val create : ?mode:mode -> tau:int -> unit -> t
(** @raise Invalid_argument if [tau < 0]. *)

val insert : t -> Subgraph.t -> unit

val n_subgraphs : t -> int
(** Number of subgraphs inserted (not counting key replication). *)

val n_groups : t -> int
(** Number of non-empty (position, twig) buckets — an index-size metric. *)

val probe : t -> Tsj_tree.Binary_tree.t -> int -> (Subgraph.t -> unit) -> unit
(** [probe idx target v f] calls [f] on every indexed subgraph whose
    position group contains [v] (in either coordinate) and whose twig key
    is compatible with the twig of [target] at [v].  [f] may be called
    with subgraphs that do not actually match — callers run
    {!Subgraph.matches} — and may be called twice for a subgraph reachable
    through both coordinates; in {!Two_sided} mode it never misses a
    subgraph left untouched by an edit script of length [<= tau]. *)

type cursor
(** The per-node twig keys of one probed tree, precomputed.  A join
    probes the same tree against one index per admissible size (times two
    coordinate tables); the cursor hoists the twig-key computation out of
    that loop. *)

val cursor : Tsj_tree.Binary_tree.t -> cursor
(** [cursor target] precomputes the twig key of every node of [target]
    in O(size). *)

val probe_cursor : t -> cursor -> int -> (Subgraph.t -> unit) -> unit
(** [probe_cursor idx cur v f] — exactly {!probe} on the tree the cursor
    was built from, reading the precomputed keys. *)

type frozen
(** A typed read-only view of an index.  Freezing is O(1) and shares
    structure: probes through the view observe later {!insert}s, but the
    type guarantees the view itself cannot mutate the index — which makes
    it safe to probe one frozen view from several domains concurrently,
    provided no [insert] on the underlying index runs at the same time
    (the PartSJ block sweep alternates a parallel probe phase against the
    frozen view with a sequential insertion phase). *)

val freeze : t -> frozen

val probe_frozen : frozen -> cursor -> int -> (Subgraph.t -> unit) -> unit
(** {!probe_cursor} through a read-only view. *)
