(** Similarity search over an indexed collection, and non-self joins.

    The paper frames the similarity join as an extension of similarity
    search (Section 1) and notes the framework "is directly applicable for
    non-self joins".  This module provides both: a persistent PartSJ-style
    index over a fixed collection — every tree δ-partitioned and its
    subgraphs stored in per-size two-layer indexes — and query/join
    entry points on top of it.

    The index is built for one threshold [τ] (the partitioning grain
    δ = 2τ + 1 depends on it); queries may use any [τ' <= τ]: Lemma 2
    only gets stronger with fewer allowed edits, and the postorder windows
    were sized for the larger τ, so completeness is preserved. *)

type t

val build : ?mode:Two_layer_index.mode -> tau:int -> Tsj_tree.Tree.t array -> t
(** Index a collection.  @raise Invalid_argument if [tau < 0]. *)

val tau : t -> int

val n_trees : t -> int

val query : ?tau:int -> t -> Tsj_tree.Tree.t -> (int * int) list
(** [query idx q] returns [(tree index, distance)] for every collection
    tree within [tau] of [q], sorted by distance then index.
    @raise Invalid_argument if the requested [tau] exceeds the index's. *)

val save : t -> string -> unit
(** Persist the indexed collection to a file: a small header (format
    version, τ) followed by the trees in bracket notation, one per line.
    Interned label ids are process-local, so the index structure itself
    is not serialized; {!load} re-derives it, which is fast (microseconds
    per tree) and keeps the format human-readable and stable.
    Publication is atomic (tmp + rename). *)

val load : string -> (t, string) result
(** Rebuild an index previously written by {!save}.  Strict: a negative
    header τ, a corrupt header, an empty record line or a duplicate
    record is rejected with a located diagnostic ([Error "line L: ..."]
    or ["line L, column C: ..."], matching the lenient bracket parser's
    convention) instead of producing a malformed index. *)

val save_collection : tau:int -> Tsj_tree.Tree.t array -> string -> unit
(** The persistence primitive behind {!save} — also the snapshot writer
    of the server store.  Atomic (tmp + rename). *)

val collection_of_string :
  ?allow_duplicates:bool -> string -> (int * Tsj_tree.Tree.t array, string) result
(** Parse the {e contents} of a file written by {!save_collection} —
    the parsing half of {!read_collection}, for callers that read the
    bytes themselves (the server store reads snapshots through
    {!Tsj_util.Durable.read_file} so read-side fault injection reaches
    them). *)

val read_collection :
  ?allow_duplicates:bool -> string -> (int * Tsj_tree.Tree.t array, string) result
(** Parse a file written by {!save_collection} back into [(τ, trees)]
    without building the index.  [allow_duplicates] (default [false])
    admits repeated records — the server store's snapshots may
    legitimately hold duplicates inserted by clients.  Comment lines
    ([#]) are allowed in the body; blank interior lines are rejected as
    empty records. *)

val nearest : k:int -> t -> Tsj_tree.Tree.t -> (int * int) list
(** Top-k search within the index's threshold: the [k] collection trees
    closest to the query (by TED, ties by index), computed by expanding
    the search radius [τ' = 0, 1, ...] until [k] results are in hand —
    each round reuses the cheaper candidate sets of small radii.  Fewer
    than [k] pairs are returned when fewer trees lie within the index
    threshold.  @raise Invalid_argument if [k < 0]. *)

val join_with :
  ?tau:int -> t -> Tsj_tree.Tree.t array -> Tsj_join.Types.output
(** Non-self join: pair every tree of the probe collection with every
    similar tree of the indexed collection.  In the result, [i] indexes
    the {e indexed} collection and [j] the probe collection (so [i < j]
    does not hold here). *)
