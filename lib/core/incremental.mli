(** Streaming similarity join.

    The paper motivates PartSJ with "streaming workloads where tree
    objects (e.g., XML and HTML entities) are inserted and updated at a
    high rate" — its index is already built on-the-fly.  This module
    removes the remaining batch assumption (size-ascending processing):
    trees may arrive in {e any} order.  On arrival, a tree probes the
    per-size indexes over the whole [size ± τ] band (Lemma 2 partitions
    the {e indexed} tree, so the direction of the size difference is
    irrelevant), reports its join partners among everything seen so far,
    and is then partitioned and indexed itself.

    Feeding a whole collection through {!add} yields exactly the self-join
    result of {!Partsj.join}. *)

type t

val create : ?mode:Two_layer_index.mode -> ?consing:bool -> tau:int -> unit -> t
(** @raise Invalid_argument if [tau < 0].  [consing] (default [true])
    hash-conses every inserted tree into a per-index {!Tsj_tree.Dag}
    store: repeated subtrees across the stream are stored once ({!tree}
    returns the shared structural view), and insert-time verification
    uses DAG-annotated preps — equal trees are answered without running
    the DP, and the τ-banded kernel shares keyroot subproblems across
    pairs through {!Tsj_ted.Memo}.  Results are bit-identical with
    consing on or off. *)

val tau : t -> int

val n_trees : t -> int
(** Trees inserted so far. *)

val add : t -> Tsj_tree.Tree.t -> (int * int) list
(** [add t tree] inserts [tree] (its id is the number of previously
    inserted trees) and returns [(id, distance)] for every earlier tree
    within [τ], sorted by id. *)

val tree : t -> int -> Tsj_tree.Tree.t
(** @raise Invalid_argument on an unknown id. *)

val find_equal : t -> Tsj_tree.Tree.t -> int option
(** The smallest id whose tree is structurally equal to the argument
    (distance 0), if any — an O(1) hash probe, no TED.  This is the
    whole-tree dedup primitive of the serving store. *)

val stats : t -> int * int
(** [(candidates verified, subgraphs indexed)] so far. *)

type query_result = {
  hits : (int * int) list;
      (** [(id, distance)] for every verified tree within [τ], sorted by
          distance then id *)
  degraded : bool;
      (** the budget expired before every candidate was verified *)
  unverified : (int * int * int) list;
      (** when degraded: [(id, lower, upper)] bound sandwiches
          ([lower <= TED <= upper]) of the candidates left unverified,
          minus those whose lower bound already exceeds [τ] (provably
          not results); sorted by id *)
}

val query :
  ?budget:Tsj_join.Budget.t ->
  ?domains:int ->
  ?tau:int ->
  t ->
  Tsj_tree.Tree.t ->
  query_result
(** Non-mutating similarity search over everything inserted so far —
    the serving path of the streaming index.  [tau] defaults to the
    index threshold and may be any [τ' <= τ] (the probe band shrinks
    with it).  Verification runs in chunks of candidates (fanned over
    [domains] when > 1) and polls [budget] between chunks: an expired
    budget degrades the answer instead of hanging — see
    {!type:query_result}.  With no budget the result is exact and
    bit-identical at every domain count.
    @raise Invalid_argument if [tau] exceeds the index threshold, is
    negative, or [domains < 1]. *)

val nearest : k:int -> t -> Tsj_tree.Tree.t -> (int * int) list
(** Top-k within the index threshold, by expanding radius (see
    {!Search.nearest}).  @raise Invalid_argument if [k < 0]. *)
