module Tree = Tsj_tree.Tree
module Binary_tree = Tsj_tree.Binary_tree
module Ted = Tsj_ted.Ted

type size_entry = { index : Two_layer_index.t; mutable small : int list }

type t = {
  tau : int;
  mode : Two_layer_index.mode;
  delta : int;
  mutable trees : Tree.t array;     (* growable; slot i = tree id i *)
  mutable preps : Ted.prep option array;
  mutable count : int;
  entries : (int, size_entry) Hashtbl.t;
  exact : (int, int list) Hashtbl.t;
      (* structural hash -> ids, newest first; collisions are resolved
         by [Tree.equal].  Serves tau = 0 point queries without probing
         or TED: distance 0 is exactly structural equality. *)
  dag : Tsj_tree.Dag.t option;
      (* hash-consing store shared by every inserted tree.  [add] (the
         only mutator, and like every index mutation single-writer)
         interns there; the stored tree becomes the shared structural
         view, so repeated subtrees across the stream cost one node and
         the consed preps unlock the kernels' equal-subtree fast path
         and the cross-pair memo cache. *)
  mutable n_candidates : int;
  mutable n_indexed : int;
}

let create ?(mode = Two_layer_index.Two_sided) ?(consing = true) ~tau () =
  if tau < 0 then invalid_arg "Incremental.create: negative threshold";
  {
    tau;
    mode;
    delta = (2 * tau) + 1;
    trees = Array.make 16 (Tree.leaf Tsj_tree.Label.epsilon);
    preps = Array.make 16 None;
    count = 0;
    entries = Hashtbl.create 64;
    exact = Hashtbl.create 64;
    dag = (if consing then Some (Tsj_tree.Dag.create ()) else None);
    n_candidates = 0;
    n_indexed = 0;
  }

(* Deep structural hash: the default [Hashtbl.hash] caps the traversal
   at 10 meaningful nodes, which would lump most real trees into a
   handful of buckets. *)
let tree_key tree = Hashtbl.hash_param 1024 4096 tree

let tau t = t.tau

let n_trees t = t.count

let tree t id =
  if id < 0 || id >= t.count then invalid_arg "Incremental.tree: unknown id";
  t.trees.(id)

let stats t = (t.n_candidates, t.n_indexed)

let grow t =
  let cap = Array.length t.trees in
  if t.count = cap then begin
    let trees = Array.make (2 * cap) t.trees.(0) in
    Array.blit t.trees 0 trees 0 cap;
    t.trees <- trees;
    let preps = Array.make (2 * cap) None in
    Array.blit t.preps 0 preps 0 cap;
    t.preps <- preps
  end

(* Lazy fallback for trees whose consing failed (or consing off).  It
   must stay UNconsed: [prep] is called from inside [query]'s parallel
   verification chunks, and interning from a worker would race on the
   store — consed preps are built eagerly in [add] instead. *)
let prep t id =
  match t.preps.(id) with
  | Some p -> p
  | None ->
    let p = Ted.preprocess t.trees.(id) in
    t.preps.(id) <- Some p;
    p

let entry_for t size =
  match Hashtbl.find_opt t.entries size with
  | Some e -> e
  | None ->
    let e = { index = Two_layer_index.create ~mode:t.mode ~tau:t.tau (); small = [] } in
    Hashtbl.add t.entries size e;
    e

(* Candidate ids among the already-inserted trees for a probe of shape
   [btree], over the [size ± tau] band.  One cursor serves every size in
   the band (the twig keys depend only on the probed tree); it is built
   lazily so a probe whose whole band is empty — common in streams with
   disparate tree sizes — costs only the band scan.  A band entry left
   with no subgraphs and no small trees is skipped without probing. *)
let band_candidates t ~tau btree =
  let size = btree.Binary_tree.size in
  let cursor = lazy (Two_layer_index.cursor btree) in
  let checked = Hashtbl.create 16 in
  let pending = ref [] in
  for other_size = max 1 (size - tau) to size + tau do
    match Hashtbl.find_opt t.entries other_size with
    | None -> ()
    | Some entry ->
      List.iter
        (fun tj ->
          if not (Hashtbl.mem checked tj) then begin
            Hashtbl.add checked tj ();
            pending := tj :: !pending
          end)
        entry.small;
      if Two_layer_index.n_subgraphs entry.index > 0 then begin
        let cursor = Lazy.force cursor in
        for v = 0 to size - 1 do
          Two_layer_index.probe_cursor entry.index cursor v (fun s ->
              let tj = s.Subgraph.tree_id in
              if not (Hashtbl.mem checked tj) then
                if Subgraph.matches s btree v then begin
                  Hashtbl.add checked tj ();
                  pending := tj :: !pending
                end)
        done
      end
  done;
  !pending

let find_equal t q =
  Option.value (Hashtbl.find_opt t.exact (tree_key q)) ~default:[]
  |> List.filter (fun id -> Tree.equal t.trees.(id) q)
  |> function
  | [] -> None
  | ids -> Some (List.fold_left min max_int ids)

let add t tree =
  grow t;
  let id = t.count in
  let tree =
    (* Intern first so the stored slot is the shared structural view:
       a duplicate of an earlier tree is then physically equal to it,
       and the eager consed prep carries DAG ids for the kernels.
       Consing is an optimisation — if it raises on a pathological
       shape, fall back to storing the tree as given (lazy unconsed
       prep). *)
    match t.dag with
    | None -> tree
    | Some dag -> (
      match Ted.cons dag tree with
      | c ->
        t.preps.(id) <- Some (Ted.preprocess_consed c);
        Ted.consed_tree c
      | exception _ -> tree)
  in
  t.trees.(id) <- tree;
  t.count <- t.count + 1;
  (let key = tree_key tree in
   let ids = Option.value (Hashtbl.find_opt t.exact key) ~default:[] in
   Hashtbl.replace t.exact key (id :: ids));
  let btree = Binary_tree.of_tree tree in
  let size = btree.Binary_tree.size in
  (* 1. Probe: candidates among all previously inserted trees in the
     size band, in either direction. *)
  let pending = band_candidates t ~tau:t.tau btree in
  (* 2. Verify. *)
  let my_prep = prep t id in
  let results =
    List.filter_map
      (fun tj ->
        t.n_candidates <- t.n_candidates + 1;
        let d = Ted.bounded_distance_prep my_prep (prep t tj) t.tau in
        if d <= t.tau then Some (tj, d) else None)
      pending
    |> List.sort compare
  in
  (* 3. Index the new tree. *)
  let entry = entry_for t size in
  if size < t.delta then entry.small <- id :: entry.small
  else begin
    let part = Partition.partition btree ~delta:t.delta in
    Array.iter
      (fun s ->
        Two_layer_index.insert entry.index s;
        t.n_indexed <- t.n_indexed + 1)
      (Subgraph.of_partition ~tree_id:id part)
  end;
  results

(* --- non-mutating queries (the serving path) --- *)

type query_result = {
  hits : (int * int) list;
  degraded : bool;
  unverified : (int * int * int) list;
}

(* Verification runs in chunks so a per-request budget is polled at a
   bounded interval even when the chunk itself fans out over domains.
   Chunks must clear [Parallel.map]'s small-input cutoff (64) or the
   [domains] knob would silently do nothing. *)
let verify_chunk_size = 128

let query ?budget ?(domains = 1) ?tau t q =
  let tau = Option.value tau ~default:t.tau in
  if tau > t.tau then
    invalid_arg
      (Printf.sprintf "Incremental.query: tau = %d exceeds the index threshold %d" tau
         t.tau);
  if tau < 0 then invalid_arg "Incremental.query: negative threshold";
  if domains < 1 then invalid_arg "Incremental.query: domains must be >= 1";
  if tau = 0 then begin
    (* Point query: TED 0 is exactly structural equality, so the
       exact-match hash answers without probing, preprocessing or any
       distance computation — this is the hot read of the serving
       path. *)
    let hits =
      Option.value (Hashtbl.find_opt t.exact (tree_key q)) ~default:[]
      |> List.filter (fun id -> Tree.equal t.trees.(id) q)
      |> List.sort compare
      |> List.map (fun id -> (id, 0))
    in
    { hits; degraded = false; unverified = [] }
  end
  else begin
  let qb = Binary_tree.of_tree q in
  let cands = Array.of_list (List.sort compare (band_candidates t ~tau qb)) in
  let qprep = Ted.preprocess q in
  let n = Array.length cands in
  let hits = ref [] in
  let unverified = ref [] in
  let degraded = ref false in
  let live () =
    match budget with None -> true | Some b -> Tsj_join.Budget.live b
  in
  let chunk_from lo =
    let hi = min n (lo + verify_chunk_size) in
    let ds =
      Tsj_join.Parallel.map ~domains
        (fun tj -> Ted.bounded_distance_prep qprep (prep t tj) tau)
        (Array.sub cands lo (hi - lo))
    in
    Array.iteri
      (fun k d -> if d <= tau then hits := (cands.(lo + k), d) :: !hits)
      ds;
    hi
  in
  let rec go lo =
    if lo < n then
      if live () then go (chunk_from lo)
      else begin
        (* Over budget: the remaining candidates are reported with their
           bound sandwich instead of hanging on the exact kernel.  A
           candidate whose cheap lower bound already exceeds τ is
           discarded — it is provably not a result. *)
        degraded := true;
        for k = lo to n - 1 do
          let tj = cands.(k) in
          let other = t.trees.(tj) in
          let lower = Tsj_ted.Bounds.best q other in
          if lower <= tau then begin
            let upper = Tsj_ted.Bounds.upper q other in
            unverified := (tj, lower, upper) :: !unverified
          end
        done
      end
  in
  go 0;
  {
    hits =
      List.sort
        (fun (i1, d1) (i2, d2) -> if d1 <> d2 then compare d1 d2 else compare i1 i2)
        !hits;
    degraded = !degraded;
    unverified = List.sort compare !unverified;
  }
  end

let nearest ~k t q =
  if k < 0 then invalid_arg "Incremental.nearest: negative k";
  if k = 0 then []
  else begin
    let qprep = Ted.preprocess q in
    let qb = Binary_tree.of_tree q in
    let dist_cache : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let dist tj =
      match Hashtbl.find_opt dist_cache tj with
      | Some d -> d
      | None ->
        let d = Ted.bounded_distance_prep qprep (prep t tj) t.tau in
        Hashtbl.add dist_cache tj d;
        d
    in
    let sorted_hits tau' =
      Hashtbl.fold (fun tj d acc -> if d <= tau' then (tj, d) :: acc else acc) dist_cache []
      |> List.sort (fun (i1, d1) (i2, d2) ->
             if d1 <> d2 then compare d1 d2 else compare i1 i2)
    in
    (* Expand the radius until k trees are within it (see Search.nearest:
       every tree within radius tau' is found by the radius-tau' candidate
       set, so once hits >= k the closest k are final). *)
    let rec expand tau' =
      List.iter (fun tj -> ignore (dist tj)) (band_candidates t ~tau:tau' qb);
      let hits = sorted_hits tau' in
      if List.length hits >= k || tau' = t.tau then hits else expand (tau' + 1)
    in
    let hits = expand 0 in
    List.filteri (fun i _ -> i < k) hits
  end
