module Tree = Tsj_tree.Tree
module Binary_tree = Tsj_tree.Binary_tree
module Ted = Tsj_ted.Ted
module Bounds = Tsj_ted.Bounds
module Timer = Tsj_util.Timer
module Fault = Tsj_util.Fault_inject
module Types = Tsj_join.Types
module Budget = Tsj_join.Budget
module Checkpoint = Tsj_join.Checkpoint

type partitioning = Balanced | Random of int

type probe_stats = {
  n_probed : int;
  n_matched : int;
  n_small_tree_hits : int;
  n_subgraphs_indexed : int;
}

type phase_times = {
  prep_wall_s : float;
  sweep_wall_s : float;
  total_wall_s : float;
  domains_used : int;
}

(* Per-size inverted list: the two-layer index for δ-partitionable trees
   plus the overflow list of sub-δ trees. *)
type size_entry = { index : Two_layer_index.t; mutable small : int list }

(* Everything derived from one input tree, built eagerly by the parallel
   preprocessing phase: the TED preparation (both decompositions), the
   LC-RS form probed by the index, its precomputed twig cursor, and the
   compiled bound forms (sorted label/degree multisets, traversal label
   arrays, greedy-mapping arrays) that the verification filter cascade
   evaluates pairwise with zero per-pair allocation. *)
type tree_data = {
  d_prep : Ted.prep;
  d_btree : Binary_tree.t;
  d_cursor : Two_layer_index.cursor;
  d_bounds : Bounds.Compiled.t;
}

(* The immutable snapshot of one size entry taken between blocks: a
   read-only view of the index plus the overflow list value (lists are
   immutable, so capturing it is a true snapshot). *)
type frozen_entry = { f_index : Two_layer_index.frozen; f_small : int list }

(* Result of probing one tree against the frozen snapshot.  [pending] is
   in discovery order, which is deterministic: the task itself is a
   sequential loop, and scheduling only decides which domain runs it. *)
type probe_result = {
  pending : int list;
  probed : int;
  matched : int;
  small_hits : int;
  elapsed_s : float;
}

let empty_probe_result =
  { pending = []; probed = 0; matched = 0; small_hits = 0; elapsed_s = 0.0 }

(* Trees per parallel block.  Fixed — independent of the domain count —
   so the candidate stream, the verification batches and every statistic
   are bit-identical whatever the parallelism. *)
let block_size = 32

(* Verifier decision codes, indexing the per-stage counter array: how
   each candidate pair was decided.  The order mirrors the cascade;
   [stage_quarantined] marks pairs the resilience layer diverted instead
   of deciding (per-pair budget, verifier exception, deadline). *)
let stage_size = 0

let stage_labels = 1

let stage_degrees = 2

let stage_sed = 3

let stage_early = 4

let stage_kernel = 5

let stage_quarantined = 6

let n_stages = 7

(* Outcome of verifying one candidate pair: either a decision (distance
   + stage code) or a quarantine reason. *)
type verdict = { v_dist : int; v_stage : int; v_reason : Types.quarantine_reason option }

let join_with_probe_stats ?(partitioning = Balanced)
    ?(index_mode = Two_layer_index.Two_sided) ?(domains = 1)
    ?(bounded_verify = true) ?(cascade = true) ?(consing = true) ?metric ?budget
    ?checkpoint ?on_phases ~trees ~tau () =
  if tau < 0 then invalid_arg "Partsj.join: negative threshold";
  if domains < 1 then invalid_arg "Partsj.join: domains must be >= 1";
  let n = Array.length trees in
  (* Memo traffic attributable to this join: the per-domain caches and
     their counters outlive any single run, so report deltas. *)
  let memo_hits0 = Atomic.get Tsj_ted.Memo.hits in
  let memo_misses0 = Atomic.get Tsj_ted.Memo.misses in
  let delta = (2 * tau) + 1 in
  let total_t0 = Timer.now () in
  let cand_timer = Timer.create () in
  let cand_attr = ref 0.0 in
  let verify_attr = ref 0.0 in
  let rng =
    match partitioning with
    | Balanced -> None
    | Random seed -> Some (Tsj_util.Prng.create seed)
  in
  let pool = if domains > 1 then Some (Tsj_join.Parallel.pool ~domains) else None in
  (* Cooperative budget plumbing: [stop_flag] is threaded into every pool
     job so expiry/cancellation drains all domains at the next chunk
     boundary; tasks additionally poll [budget_live] so the single-domain
     path stops just as promptly. *)
  let stop_flag = Option.map Budget.stop_flag budget in
  let budget_live () = match budget with None -> true | Some b -> Budget.live b in
  let budget_stopped () =
    match budget with None -> false | Some b -> Budget.stopped b
  in
  let run_tasks tasks =
    if Array.length tasks > 0 then
      match pool with
      | Some p -> Tsj_join.Pool.run_tasks p ?stop:stop_flag ~width:domains tasks
      | None -> Array.iter (fun f -> if not (budget_stopped ()) then f ()) tasks
  in
  (* Eager parallel preprocessing: every tree compiled once, up front, on
     all domains.  All downstream phases only read this immutable array,
     which is what makes the concurrent probe and verify tasks safe (no
     lazy fill-on-demand cache, no label interning past this point).
     A tree whose compilation raises (adversarially shaped input, an
     injected fault) is quarantined — it takes a placeholder slot that no
     phase ever reads, and joins in no pair — instead of aborting the
     run. *)
  let prep_failures : string option array = Array.make (max n 1) None in
  let placeholder =
    (* Built on the caller BEFORE the fan-out: workers must not intern. *)
    let leaf = Tree.leaf (Tsj_tree.Label.intern "?") in
    let btree = Binary_tree.of_tree leaf in
    {
      d_prep = Ted.preprocess leaf;
      d_btree = btree;
      d_cursor = Two_layer_index.cursor btree;
      d_bounds = Bounds.Compiled.of_tree leaf;
    }
  in
  (* Hash-consing pass: sequential (interning mutates the store, and like
     label interning it must not run on workers), so it happens here on
     the caller before the fan-out.  The per-tree [consed] handles are
     then expanded into preps by the pure [preprocess_consed] inside the
     parallel map.  A tree whose interning raises falls back to plain
     preprocessing — consing is an optimisation, never a gate. *)
  let consed_slots : Ted.consed option array = Array.make (max n 1) None in
  let (), cons_wall =
    Timer.wall (fun () ->
        if consing then begin
          let dag = Tsj_tree.Dag.create () in
          for i = 0 to n - 1 do
            match Ted.cons dag trees.(i) with
            | c -> consed_slots.(i) <- Some c
            | exception _ -> ()
          done
        end)
  in
  let data, prep_wall =
    Timer.wall (fun () ->
        Tsj_join.Parallel.map ~domains
          (fun i ->
            match
              Fault.hit "partsj.prep" i;
              let tree = trees.(i) in
              let btree = Binary_tree.of_tree tree in
              let prep =
                match consed_slots.(i) with
                | Some c -> Ted.preprocess_consed c
                | None -> Ted.preprocess tree
              in
              {
                d_prep = prep;
                d_btree = btree;
                d_cursor = Two_layer_index.cursor btree;
                d_bounds = Bounds.Compiled.of_tree tree;
              }
            with
            | d -> d
            | exception exn ->
              (* Per-index slot: each worker writes its own index once,
                 so the array needs no synchronization. *)
              prep_failures.(i) <- Some (Printexc.to_string exn);
              placeholder)
          (Array.init n Fun.id))
  in
  verify_attr := !verify_attr +. cons_wall +. prep_wall;
  let excluded i = prep_failures.(i) <> None in
  let quarantine_prep = ref [] in
  Array.iteri
    (fun i failure ->
      match failure with
      | Some msg when i < n ->
        quarantine_prep :=
          { Types.q_i = i; q_j = None; q_reason = Types.Preprocess_failed msg }
          :: !quarantine_prep
      | _ -> ())
    prep_failures;
  let sizes = Array.map Tree.size trees in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b -> if sizes.(a) <> sizes.(b) then compare sizes.(a) sizes.(b) else compare a b)
    order;
  let entries : (int, size_entry) Hashtbl.t = Hashtbl.create 64 in
  let entry_for table mode size =
    match Hashtbl.find_opt table size with
    | Some e -> e
    | None ->
      let e = { index = Two_layer_index.create ~mode ~tau (); small = [] } in
      Hashtbl.add table size e;
      e
  in
  let n_probed = ref 0 in
  let n_matched = ref 0 in
  let n_small_hits = ref 0 in
  let n_indexed = ref 0 in
  (* The staged verifier.  Returns a {!verdict}: the (threshold-clamped)
     distance and the stage code that decided the pair, or a quarantine
     reason when the resilience layer diverted it:
     - with the cascade on, the compiled lower bounds run cheapest first
       with short-circuit, the greedy upper bound early-accepts a pair
       whose bound sandwich closes, and surviving pairs run the kernel
       with the band shrunk to the upper bound when that is below τ — all
       lossless, so results (pairs and distances) are bit-identical to
       the uncascaded verifier;
     - with the cascade off, this is the seed verifier: the banded
       preorder-SED prefilter followed by the τ-banded kernel;
     - [bounded_verify:false] forces the full kernel on every candidate
       (ablation);
     - a pair that reaches the exact kernel with a cost estimate over the
       per-pair budget is quarantined with its bound sandwich (still a
       pure function of the pair, so budgeted joins stay deterministic at
       every domain count); a verifier exception quarantines the pair
       instead of killing the join. *)
  let verify_pair =
    let d = data in
    fun (i, j) ->
      let decide dist stage = { v_dist = dist; v_stage = stage; v_reason = None } in
      let kernel_allowed () =
        match budget with
        | None -> true
        | Some b ->
          Budget.pair_within b ~cost:(Budget.pair_cost sizes.(i) sizes.(j))
      in
      let over_budget () =
        let lower = Bounds.Compiled.best d.(i).d_bounds d.(j).d_bounds in
        let upper = Bounds.Compiled.upper d.(i).d_bounds d.(j).d_bounds in
        {
          v_dist = tau + 1;
          v_stage = stage_quarantined;
          v_reason = Some (Types.Pair_budget { lower; upper });
        }
      in
      try
        Fault.hit "partsj.verify" i;
        if not bounded_verify then
          if kernel_allowed () then
            decide (Tsj_join.Sweep.verify_distance ?metric d.(i).d_prep d.(j).d_prep)
              stage_kernel
          else over_budget ()
        else if not cascade then
          if
            not
              (Tsj_ted.String_edit.within
                 (Bounds.Compiled.preorder d.(i).d_bounds)
                 (Bounds.Compiled.preorder d.(j).d_bounds)
                 tau)
          then decide (tau + 1) stage_sed
          else if kernel_allowed () then
            decide
              (Tsj_join.Sweep.verify_bounded ?metric ~tau d.(i).d_prep d.(j).d_prep)
              stage_kernel
          else over_budget ()
        else
          match Bounds.Compiled.cascade ~tau d.(i).d_bounds d.(j).d_bounds with
          | Bounds.Compiled.Pruned stage ->
            let code =
              match stage with
              | Bounds.Compiled.Size -> stage_size
              | Bounds.Compiled.Labels -> stage_labels
              | Bounds.Compiled.Degrees -> stage_degrees
              | Bounds.Compiled.Sed -> stage_sed
            in
            decide (tau + 1) code
          | Bounds.Compiled.Accept dist -> decide dist stage_early
          | Bounds.Compiled.Verify { band } ->
            if kernel_allowed () then
              decide
                (Tsj_join.Sweep.verify_bounded ?metric ~tau:band d.(i).d_prep
                   d.(j).d_prep)
                stage_kernel
            else over_budget ()
      with exn ->
        {
          v_dist = tau + 1;
          v_stage = stage_quarantined;
          v_reason = Some (Types.Verify_failed (Printexc.to_string exn));
        }
  in
  (* Per-stage decision counters; pure sums of per-pair outcomes, so they
     are deterministic at every domain count. *)
  let stage_counts = Array.make n_stages 0 in
  let results = ref [] in
  let quarantine_sweep = ref [] in
  let candidates = ref 0 in
  (* The candidate batch of the previous block, verified on the pool
     while the next block probes (software pipelining: candidate
     generation of block b overlaps verification of block b - 1). *)
  let pending_batch = ref [||] in
  let flush_batch_tasks () =
    let batch = !pending_batch in
    let nb = Array.length batch in
    if nb = 0 then ([||], fun () -> ())
    else begin
      let verdicts : verdict option array = Array.make nb None in
      let elapsed = Array.make nb 0.0 in
      let tasks =
        Array.init nb (fun idx ->
            fun () ->
              if budget_live () then begin
                let v, dt = Timer.wall (fun () -> verify_pair batch.(idx)) in
                verdicts.(idx) <- Some v;
                elapsed.(idx) <- dt
              end)
      in
      let commit () =
        Array.iter (fun dt -> verify_attr := !verify_attr +. dt) elapsed;
        Array.iteri
          (fun idx (i, j) ->
            let a = min i j and b = max i j in
            match verdicts.(idx) with
            | Some v -> (
              stage_counts.(v.v_stage) <- stage_counts.(v.v_stage) + 1;
              match v.v_reason with
              | Some reason ->
                quarantine_sweep :=
                  { Types.q_i = a; q_j = Some b; q_reason = reason }
                  :: !quarantine_sweep
              | None ->
                if v.v_dist <= tau then
                  results := { Types.i = a; j = b; distance = v.v_dist } :: !results)
            | None ->
              (* The task never ran: the stop flag drained the pool
                 before it was claimed.  The pair is unprocessed work,
                 not a non-result — quarantine it. *)
              stage_counts.(stage_quarantined) <- stage_counts.(stage_quarantined) + 1;
              quarantine_sweep :=
                { Types.q_i = a; q_j = Some b; q_reason = Types.Deadline }
                :: !quarantine_sweep)
          batch;
        pending_batch := [||]
      in
      (tasks, commit)
    end
  in
  let drain_pending () =
    let verify_tasks, commit = flush_batch_tasks () in
    run_tasks verify_tasks;
    commit ()
  in
  (* Probe one tree against the frozen snapshot of everything indexed
     before the current block.  Pure function of immutable data — safe on
     any domain. *)
  let probe_frozen_task snapshot ti =
    let r, dt =
      Timer.wall (fun () ->
          let d = data.(ti) in
          let size_i = sizes.(ti) in
          let checked : (int, unit) Hashtbl.t = Hashtbl.create 16 in
          let pending = ref [] in
          let probed = ref 0 and matched = ref 0 and small_hits = ref 0 in
          for size_j = max 1 (size_i - tau) to size_i do
            match Hashtbl.find_opt snapshot size_j with
            | None -> ()
            | Some fe ->
              (* Sub-δ trees in the window are always candidates. *)
              List.iter
                (fun tj ->
                  if not (Hashtbl.mem checked tj) then begin
                    Hashtbl.add checked tj ();
                    incr small_hits;
                    pending := tj :: !pending
                  end)
                fe.f_small;
              for v = 0 to size_i - 1 do
                Two_layer_index.probe_frozen fe.f_index d.d_cursor v (fun s ->
                    incr probed;
                    let tj = s.Subgraph.tree_id in
                    if not (Hashtbl.mem checked tj) then
                      if Subgraph.matches s d.d_btree v then begin
                        incr matched;
                        Hashtbl.add checked tj ();
                        pending := tj :: !pending
                      end)
              done
          done;
          {
            pending = List.rev !pending;
            probed = !probed;
            matched = !matched;
            small_hits = !small_hits;
            elapsed_s = 0.0;
          })
    in
    { r with elapsed_s = dt }
  in
  let n_blocks = (n + block_size - 1) / block_size in
  (* --- checkpoint/resume --- *)
  let fingerprint =
    match checkpoint with
    | None -> ""
    | Some _ ->
      let params =
        Printf.sprintf
          "v2|block=%d|part=%s|index=%s|metric=%s|bounded=%b|cascade=%b|cons=%b"
          block_size
          (match partitioning with
          | Balanced -> "balanced"
          | Random seed -> "random:" ^ string_of_int seed)
          (match index_mode with
          | Two_layer_index.Two_sided -> "two-sided"
          | Two_layer_index.Paper_rank -> "paper-rank"
          | Two_layer_index.Label_only -> "label-only")
          (match metric with
          | None | Some Tsj_join.Sweep.Ted -> "ted"
          | Some Tsj_join.Sweep.Constrained -> "constrained")
          bounded_verify cascade consing
      in
      Checkpoint.fingerprint ~tau ~params trees
  in
  let resume_state =
    match checkpoint with
    | Some cfg when cfg.Checkpoint.resume -> (
      match Checkpoint.load cfg.Checkpoint.path with
      | Ok None -> None
      | Ok (Some st) ->
        if st.Checkpoint.fingerprint <> fingerprint then
          invalid_arg
            (Printf.sprintf
               "Partsj.join: checkpoint %s was written by a different dataset or \
                join configuration"
               cfg.Checkpoint.path)
        else if Array.length st.Checkpoint.stage_counts <> n_stages then
          invalid_arg
            (Printf.sprintf "Partsj.join: checkpoint %s has an incompatible format"
               cfg.Checkpoint.path)
        else Some st
      | Error msg ->
        invalid_arg
          (Printf.sprintf "Partsj.join: cannot resume from checkpoint %s: %s"
             cfg.Checkpoint.path msg))
    | _ -> None
  in
  let start_block =
    match resume_state with
    | None -> 0
    | Some st ->
      results := List.rev st.Checkpoint.pairs;
      quarantine_sweep := List.rev st.Checkpoint.quarantined;
      candidates := st.Checkpoint.n_candidates;
      Array.blit st.Checkpoint.stage_counts 0 stage_counts 0 n_stages;
      n_probed := st.Checkpoint.n_probed;
      n_matched := st.Checkpoint.n_matched;
      n_small_hits := st.Checkpoint.n_small_hits;
      n_indexed := st.Checkpoint.n_indexed;
      min st.Checkpoint.blocks_done n_blocks
  in
  let save_checkpoint blocks_done =
    match checkpoint with
    | None -> ()
    | Some cfg ->
      Checkpoint.save ~path:cfg.Checkpoint.path
        {
          Checkpoint.fingerprint;
          blocks_done;
          pairs = List.rev !results;
          quarantined = List.rev !quarantine_sweep;
          n_candidates = !candidates;
          stage_counts = Array.copy stage_counts;
          n_probed = !n_probed;
          n_matched = !n_matched;
          n_small_hits = !n_small_hits;
          n_indexed = !n_indexed;
        }
  in
  let checkpoint_due blk =
    match checkpoint with
    | None -> false
    | Some cfg -> (blk + 1) mod cfg.Checkpoint.every = 0 || blk = n_blocks - 1
  in
  (* Deadline/cancellation abort: everything not yet processed — the
     current block (whose probe results may be partial) and all later
     blocks — is quarantined tree-by-tree in sweep order, so the
     account of skipped work is complete and deterministic given the
     point of interruption. *)
  let aborted = ref false in
  let abort_remaining from_block =
    for b = from_block * block_size to n - 1 do
      let ti = order.(b) in
      if not (excluded ti) then
        quarantine_sweep :=
          { Types.q_i = ti; q_j = None; q_reason = Types.Deadline }
          :: !quarantine_sweep
    done;
    aborted := true
  in
  let sweep () =
    (* Resume fast-forward: re-index the completed blocks without
       probing, verifying or counting — the journal already holds their
       outputs.  The RNG (random partitioning) is consumed in exactly
       the original order, so the rebuilt index is bit-identical. *)
    for blk = 0 to start_block - 1 do
      let b0 = blk * block_size in
      let b1 = min n (b0 + block_size) in
      for w = 0 to b1 - b0 - 1 do
        let ti = order.(b0 + w) in
        if not (excluded ti) then begin
          let size_i = sizes.(ti) in
          let entry = entry_for entries index_mode size_i in
          if size_i < delta then entry.small <- ti :: entry.small
          else begin
            let part =
              match rng with
              | None -> Partition.partition data.(ti).d_btree ~delta
              | Some rng -> Partition.random_partition rng data.(ti).d_btree ~delta
            in
            Array.iter
              (fun s -> Two_layer_index.insert entry.index s)
              (Subgraph.of_partition ~tree_id:ti part)
          end
        end
      done
    done;
    let blk = ref start_block in
    while !blk < n_blocks && not !aborted do
      (* Injectable kill point: a raise here simulates a crash between
         blocks; the last checkpoint then resumes the sweep exactly. *)
      Fault.hit "partsj.block" !blk;
      if not (budget_live ()) then begin
        drain_pending ();
        abort_remaining !blk
      end
      else begin
        let b0 = !blk * block_size in
        let b1 = min n (b0 + block_size) in
        let width = b1 - b0 in
        (* Snapshot the per-size entries: O(#sizes), between-block only. *)
        let snapshot : (int, frozen_entry) Hashtbl.t = Hashtbl.create 64 in
        Hashtbl.iter
          (fun size e ->
            Hashtbl.add snapshot size
              { f_index = Two_layer_index.freeze e.index; f_small = e.small })
          entries;
        (* Parallel phase: probe every tree of this block against the
           frozen snapshot, and verify the previous block's candidates. *)
        let frozen_results = Array.make width empty_probe_result in
        let probe_tasks =
          Array.init width (fun w ->
              fun () ->
                let ti = order.(b0 + w) in
                if (not (excluded ti)) && budget_live () then
                  frozen_results.(w) <- probe_frozen_task snapshot ti)
        in
        let verify_tasks, commit_batch = flush_batch_tasks () in
        run_tasks (Array.append probe_tasks verify_tasks);
        commit_batch ();
        if budget_stopped () then
          (* Expired mid-block: the probe results above may be partial,
             so the whole block is treated as unprocessed. *)
          abort_remaining !blk
        else begin
          Array.iter
            (fun r ->
              cand_attr := !cand_attr +. r.elapsed_s;
              n_probed := !n_probed + r.probed;
              n_matched := !n_matched + r.matched;
              n_small_hits := !n_small_hits + r.small_hits)
            frozen_results;
          (* Sequential phase: in block order, probe the subgraphs
             inserted earlier in this block (invisible to the snapshot),
             emit the tree's candidates, then partition and index it.
             The random partitioning rng is consumed only here, in tree
             order, so the stream is identical at every domain count. *)
          Timer.start cand_timer;
          let block_entries : (int, size_entry) Hashtbl.t = Hashtbl.create 8 in
          let batch = ref [] in
          for w = 0 to width - 1 do
            let ti = order.(b0 + w) in
            if not (excluded ti) then begin
              let d = data.(ti) in
              let size_i = sizes.(ti) in
              let checked : (int, unit) Hashtbl.t = Hashtbl.create 8 in
              let local_pending = ref [] in
              for size_j = max 1 (size_i - tau) to size_i do
                match Hashtbl.find_opt block_entries size_j with
                | None -> ()
                | Some entry ->
                  List.iter
                    (fun tj ->
                      if not (Hashtbl.mem checked tj) then begin
                        Hashtbl.add checked tj ();
                        incr n_small_hits;
                        local_pending := tj :: !local_pending
                      end)
                    entry.small;
                  for v = 0 to size_i - 1 do
                    Two_layer_index.probe_cursor entry.index d.d_cursor v (fun s ->
                        incr n_probed;
                        let tj = s.Subgraph.tree_id in
                        if not (Hashtbl.mem checked tj) then
                          if Subgraph.matches s d.d_btree v then begin
                            incr n_matched;
                            Hashtbl.add checked tj ();
                            local_pending := tj :: !local_pending
                          end)
                  done
              done;
              (* Frozen hits (trees before the block) and local hits
                 (earlier trees of this block) are disjoint by
                 construction; their concatenation is the exact candidate
                 set of the sequential algorithm, in a deterministic
                 order. *)
              let emit tj =
                incr candidates;
                batch := (ti, tj) :: !batch
              in
              List.iter emit frozen_results.(w).pending;
              List.iter emit (List.rev !local_pending);
              (* Index the current tree for subsequent iterations: in the
                 main per-size entry for later blocks, and in the
                 block-local entry for the remaining trees of this
                 block. *)
              let entry = entry_for entries index_mode size_i in
              let local = entry_for block_entries index_mode size_i in
              if size_i < delta then begin
                entry.small <- ti :: entry.small;
                local.small <- ti :: local.small
              end
              else begin
                let part =
                  match rng with
                  | None -> Partition.partition d.d_btree ~delta
                  | Some rng -> Partition.random_partition rng d.d_btree ~delta
                in
                Array.iter
                  (fun s ->
                    Two_layer_index.insert entry.index s;
                    Two_layer_index.insert local.index s;
                    incr n_indexed)
                  (Subgraph.of_partition ~tree_id:ti part)
              end
            end
          done;
          Timer.stop cand_timer;
          pending_batch := Array.of_list (List.rev !batch);
          if checkpoint_due !blk then begin
            (* Drain the pipelined batch so the journal never records a
               block whose candidates are still in flight, then publish.
               An expiry during the drain skips the save: journals only
               ever describe fully verified prefixes. *)
            drain_pending ();
            if not (budget_stopped ()) then save_checkpoint (!blk + 1)
          end
        end
      end;
      incr blk
    done;
    (* Drain the last block's candidates. *)
    if not !aborted then drain_pending ()
  in
  let (), sweep_wall = Timer.wall sweep in
  (* Window-pair count (the shared universe statistic): trees are sorted by
     size, so a sliding lower pointer suffices. *)
  let window_pairs = ref 0 in
  let lo = ref 0 in
  for b = 0 to n - 1 do
    while sizes.(order.(b)) - sizes.(order.(!lo)) > tau do
      incr lo
    done;
    window_pairs := !window_pairs + (b - !lo)
  done;
  let pairs = List.rev !results in
  let quarantined = List.rev !quarantine_prep @ List.rev !quarantine_sweep in
  let cand_time_s = !cand_attr +. Timer.elapsed_s cand_timer in
  let verify_time_s = !verify_attr in
  (match on_phases with
  | None -> ()
  | Some f ->
    f
      {
        prep_wall_s = prep_wall;
        sweep_wall_s = sweep_wall;
        total_wall_s = Timer.now () -. total_t0;
        domains_used = domains;
      });
  ( {
      Types.pairs;
      quarantined;
      stats =
        {
          Types.n_trees = n;
          tau;
          n_window_pairs = !window_pairs;
          n_candidates = !candidates;
          n_results = List.length pairs;
          candidate_time_s = cand_time_s;
          verify_time_s;
          cascade =
            {
              Types.pruned_size = stage_counts.(stage_size);
              pruned_labels = stage_counts.(stage_labels);
              pruned_degrees = stage_counts.(stage_degrees);
              pruned_sed = stage_counts.(stage_sed);
              early_accepted = stage_counts.(stage_early);
              kernel_verified = stage_counts.(stage_kernel);
              quarantined = stage_counts.(stage_quarantined);
              memo_hits = Atomic.get Tsj_ted.Memo.hits - memo_hits0;
              memo_misses = Atomic.get Tsj_ted.Memo.misses - memo_misses0;
            };
        };
    },
    {
      n_probed = !n_probed;
      n_matched = !n_matched;
      n_small_tree_hits = !n_small_hits;
      n_subgraphs_indexed = !n_indexed;
    } )

let join ?partitioning ?index_mode ?domains ?bounded_verify ?cascade ?consing ?metric
    ?budget ?checkpoint ?on_phases ~trees ~tau () =
  fst
    (join_with_probe_stats ?partitioning ?index_mode ?domains ?bounded_verify ?cascade
       ?consing ?metric ?budget ?checkpoint ?on_phases ~trees ~tau ())
