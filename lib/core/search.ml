module Tree = Tsj_tree.Tree
module Binary_tree = Tsj_tree.Binary_tree
module Ted = Tsj_ted.Ted
module Types = Tsj_join.Types
module Timer = Tsj_util.Timer

type size_entry = { index : Two_layer_index.t; mutable small : int list }

type t = {
  tau : int;
  trees : Tree.t array;
  preps : Ted.prep array;
  entries : (int, size_entry) Hashtbl.t; (* size -> inverted list *)
}

let build ?(mode = Two_layer_index.Two_sided) ~tau trees =
  if tau < 0 then invalid_arg "Search.build: negative threshold";
  let delta = (2 * tau) + 1 in
  let entries = Hashtbl.create 64 in
  let entry_for size =
    match Hashtbl.find_opt entries size with
    | Some e -> e
    | None ->
      let e = { index = Two_layer_index.create ~mode ~tau (); small = [] } in
      Hashtbl.add entries size e;
      e
  in
  Array.iteri
    (fun id tree ->
      let btree = Binary_tree.of_tree tree in
      let entry = entry_for btree.Binary_tree.size in
      if btree.Binary_tree.size < delta then entry.small <- id :: entry.small
      else begin
        let part = Partition.partition btree ~delta in
        Array.iter
          (Two_layer_index.insert entry.index)
          (Subgraph.of_partition ~tree_id:id part)
      end)
    trees;
  { tau; trees; preps = Array.map (fun t -> Ted.preprocess t) trees; entries }

let tau t = t.tau

let n_trees t = Array.length t.trees

let candidates t ?(tau = t.tau) q =
  if tau > t.tau then
    invalid_arg
      (Printf.sprintf "Search.query: tau = %d exceeds the index threshold %d" tau t.tau);
  if tau < 0 then invalid_arg "Search.query: negative threshold";
  let qb = Binary_tree.of_tree q in
  let qsize = qb.Binary_tree.size in
  let found = Hashtbl.create 16 in
  (* Unlike the self-join sweep, indexed trees may be larger than the
     query: probe the whole [qsize ± tau] size band. *)
  for size = max 1 (qsize - tau) to qsize + tau do
    match Hashtbl.find_opt t.entries size with
    | None -> ()
    | Some entry ->
      List.iter (fun id -> Hashtbl.replace found id ()) entry.small;
      for v = 0 to qsize - 1 do
        Two_layer_index.probe entry.index qb v (fun s ->
            let id = s.Subgraph.tree_id in
            if not (Hashtbl.mem found id) then
              if Subgraph.matches s qb v then Hashtbl.replace found id ())
      done
  done;
  Hashtbl.fold (fun id () acc -> id :: acc) found []

let query ?tau t q =
  let tau = Option.value tau ~default:t.tau in
  let qprep = Ted.preprocess q in
  candidates t ~tau q
  |> List.filter_map (fun id ->
         let d = Ted.bounded_distance_prep qprep t.preps.(id) tau in
         if d <= tau then Some (id, d) else None)
  |> List.sort (fun (i1, d1) (i2, d2) ->
         if d1 <> d2 then compare d1 d2 else compare i1 i2)

let format_line = "tsj-search-index v1"

(* Also the snapshot format of the server store (Tsj_server.Store):
   publication is atomic (tmp + rename, directory fsynced so the rename
   survives a machine crash) so a crash mid-save leaves either the
   previous complete file or a stray .tmp, never a torn collection. *)
let save_collection ~tau trees path =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_text tmp (fun oc ->
      Printf.fprintf oc "# %s\n# tau %d\n" format_line tau;
      Array.iter
        (fun tree ->
          Out_channel.output_string oc (Tsj_tree.Bracket.to_string tree);
          Out_channel.output_char oc '\n')
        trees);
  Tsj_util.Durable.rename tmp path

let save t path = save_collection ~tau:t.tau t.trees path

(* One record per line, parsed line by line so every diagnostic carries
   the 1-based file line (the header occupies lines 1-2).  The error
   strings match the lenient bracket parser's ["line L, column C"]
   convention. *)
let collection_of_string ?(allow_duplicates = false) contents =
  (match String.split_on_char '\n' contents with
    | header :: tau_line :: body when header = "# " ^ format_line -> (
      let located line msg = Error (Printf.sprintf "line %d: %s" line msg) in
      match String.split_on_char ' ' tau_line with
      | [ "#"; "tau"; tau_s ] -> (
        match int_of_string_opt tau_s with
        | None -> located 2 (Printf.sprintf "corrupt tau header %S" tau_s)
        | Some tau when tau < 0 ->
          located 2 (Printf.sprintf "negative threshold tau = %d in header" tau)
        | Some tau ->
          let n_body = List.length body in
          let seen = Hashtbl.create 64 in
          let is_blank s = String.trim s = "" in
          let is_comment s =
            let s = String.trim s in
            String.length s > 0 && s.[0] = '#'
          in
          let rec records k acc = function
            | [] -> Ok (tau, Array.of_list (List.rev acc))
            | line :: rest ->
              let lineno = k + 3 (* header is lines 1-2 *) in
              if is_blank line then
                if k = n_body - 1 then
                  (* the virtual segment after the final newline *)
                  records (k + 1) acc rest
                else located lineno "empty record"
              else if is_comment line then records (k + 1) acc rest
              else (
                match Tsj_tree.Bracket.of_string line with
                | Error msg ->
                  (* [of_string] saw a single line, so its location prefix
                     is always "line 1, "; splice in the file line. *)
                  let msg =
                    let prefix = "line 1, " in
                    let n = String.length prefix in
                    if String.length msg >= n && String.sub msg 0 n = prefix then
                      Printf.sprintf "line %d, %s" lineno
                        (String.sub msg n (String.length msg - n))
                    else Printf.sprintf "line %d: %s" lineno msg
                  in
                  Error msg
                | Ok tree ->
                  let key = Tsj_tree.Bracket.to_string tree in
                  (match Hashtbl.find_opt seen key with
                  | Some first when not allow_duplicates ->
                    located lineno
                      (Printf.sprintf "duplicate record (identical to line %d)" first)
                  | Some _ | None ->
                    if not (Hashtbl.mem seen key) then Hashtbl.add seen key lineno;
                    records (k + 1) (tree :: acc) rest))
          in
          records 0 [] body)
      | _ -> located 2 "corrupt tau header")
    | _ -> Error "not a tsj search index file")

let read_collection ?allow_duplicates path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> collection_of_string ?allow_duplicates contents

let load path =
  match read_collection path with
  | Error _ as e -> e
  | Ok (tau, trees) -> Ok (build ~tau trees)

let nearest ~k t q =
  if k < 0 then invalid_arg "Search.nearest: negative k";
  if k = 0 then []
  else begin
    let qprep = Ted.preprocess q in
    let dist_cache : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let dist id =
      match Hashtbl.find_opt dist_cache id with
      | Some d -> d
      | None ->
        (* distances beyond the index threshold are never reported *)
        let d = Ted.bounded_distance_prep qprep t.preps.(id) t.tau in
        Hashtbl.add dist_cache id d;
        d
    in
    let sorted_hits tau' =
      Hashtbl.fold (fun id d acc -> if d <= tau' then (id, d) :: acc else acc) dist_cache []
      |> List.sort (fun (i1, d1) (i2, d2) ->
             if d1 <> d2 then compare d1 d2 else compare i1 i2)
    in
    (* Expand the radius until k trees are within it; every tree within
       radius tau' is guaranteed found by the radius-tau' candidate set,
       so once hits >= k the closest k are final. *)
    let rec expand tau' =
      List.iter (fun id -> ignore (dist id)) (candidates t ~tau:tau' q);
      let hits = sorted_hits tau' in
      if List.length hits >= k || tau' = t.tau then hits else expand (tau' + 1)
    in
    let hits = expand 0 in
    List.filteri (fun i _ -> i < k) hits
  end

let join_with ?tau t probes =
  let tau = Option.value tau ~default:t.tau in
  let cand_timer = Timer.create () in
  let verify_timer = Timer.create () in
  let n_candidates = ref 0 in
  let pairs = ref [] in
  Array.iteri
    (fun j q ->
      let cands = Timer.time cand_timer (fun () -> candidates t ~tau q) in
      let qprep = Timer.time verify_timer (fun () -> Ted.preprocess q) in
      List.iter
        (fun i ->
          incr n_candidates;
          let d =
            Timer.time verify_timer (fun () ->
                Ted.bounded_distance_prep qprep t.preps.(i) tau)
          in
          if d <= tau then pairs := { Types.i; j; distance = d } :: !pairs)
        cands)
    probes;
  let pairs = List.rev !pairs in
  (* The window statistic for a non-self join: probe-indexed pairs within
     the size band. *)
  let window =
    let sizes_indexed = Array.map Tree.size t.trees in
    Array.fold_left
      (fun acc q ->
        let qs = Tree.size q in
        acc
        + Array.fold_left
            (fun acc s -> if abs (s - qs) <= tau then acc + 1 else acc)
            0 sizes_indexed)
      0 probes
  in
  {
    Types.pairs;
    quarantined = [];
    stats =
      {
        Types.n_trees = Array.length t.trees + Array.length probes;
        tau;
        n_window_pairs = window;
        n_candidates = !n_candidates;
        n_results = List.length pairs;
        candidate_time_s = Timer.elapsed_s cand_timer;
        verify_time_s = Timer.elapsed_s verify_timer;
        cascade =
          { Types.empty_cascade with Types.kernel_verified = !n_candidates };
      };
  }
