module Tree = Tsj_tree.Tree
module Prng = Tsj_util.Prng

type t = {
  name : string;
  params : Generator.params;
  dz : float;
  mothers_per_1000 : int;
  dup_rate : float;
  dup_dz : float;
  dup_exact : float;
  default_cardinality : int;
  fragment_pool : int;
  fragment_depth : int;
}

let swissprot =
  {
    name = "swissprot";
    params =
      {
        Generator.max_fanout = 25;
        max_depth = 4;
        n_labels = 84;
        avg_size = 62;
        size_jitter = 0.3;
      };
    dz = 0.05;
    mothers_per_1000 = 0;
    dup_rate = 0.4;
    dup_dz = 0.02;
    dup_exact = 0.0;
    default_cardinality = 100_000;
    fragment_pool = 0;
    fragment_depth = 0;
  }

let treebank =
  {
    name = "treebank";
    params =
      {
        Generator.max_fanout = 4;
        max_depth = 35;
        n_labels = 218;
        avg_size = 45;
        size_jitter = 0.3;
      };
    dz = 0.05;
    mothers_per_1000 = 0;
    dup_rate = 0.4;
    dup_dz = 0.03;
    dup_exact = 0.0;
    default_cardinality = 50_000;
    fragment_pool = 0;
    fragment_depth = 0;
  }

let sentiment =
  {
    name = "sentiment";
    params =
      {
        Generator.max_fanout = 2;
        max_depth = 30;
        n_labels = 5;
        avg_size = 37;
        size_jitter = 0.3;
      };
    dz = 0.05;
    mothers_per_1000 = 0;
    dup_rate = 0.4;
    dup_dz = 0.04;
    dup_exact = 0.0;
    default_cardinality = 10_000;
    fragment_pool = 0;
    fragment_depth = 0;
  }

let synthetic =
  {
    name = "synthetic";
    params = Generator.default;
    dz = Decay.default_dz;
    mothers_per_1000 = 0;
    dup_rate = 0.4;
    dup_dz = 0.02;
    dup_exact = 0.0;
    default_cardinality = 10_000;
    fragment_pool = 0;
    fragment_depth = 0;
  }

let redundant =
  {
    name = "redundant";
    params =
      {
        (* fragment shape: small bushy subtrees, a narrow alphabet *)
        Generator.max_fanout = 4;
        max_depth = 4;
        n_labels = 16;
        avg_size = 20;
        size_jitter = 0.3;
      };
    dz = 0.02;
    mothers_per_1000 = 0;
    dup_rate = 0.3;
    dup_dz = 0.02;
    dup_exact = 0.5;
    default_cardinality = 10_000;
    fragment_pool = 32;
    fragment_depth = 2;
  }

let all = [ swissprot; treebank; sentiment; synthetic; redundant ]

let find name =
  let lname = String.lowercase_ascii name in
  List.find_opt (fun p -> p.name = lname) all

(* Number of Binomial(size, dz) successes, by direct simulation (sizes are
   small, so this is cheap and keeps the stream deterministic). *)
let binomial rng size dz =
  let k = ref 0 in
  for _ = 1 to size do
    if Prng.float rng < dz then incr k
  done;
  !k

let instantiate profile ~seed ~n =
  if n < 0 then invalid_arg "Profiles.instantiate: negative cardinality";
  let rng = Prng.create (seed lxor Hashtbl.hash profile.name) in
  let n_mothers = n * profile.mothers_per_1000 / 1000 in
  let mothers =
    Array.init n_mothers (fun _ -> Generator.Mother.create rng profile.params)
  in
  let labels = Generator.alphabet profile.params in
  (* Shared fragment pool (fragment-composed profiles): every fresh tree
     is a shallow random "glue" scaffold whose leaves are drawn from this
     fixed pool of subtrees, referenced physically — the same fragment
     value appears in many trees, which is the subtree repetition the
     hash-consing layer and the cross-pair TED memo exploit. *)
  let fragments =
    Array.init profile.fragment_pool (fun _ ->
        Generator.random_tree rng profile.params)
  in
  let rec glue depth =
    if depth = 0 then fragments.(Prng.int rng (Array.length fragments))
    else begin
      let fanout = 1 + Prng.int rng 3 in
      Tree.node
        labels.(Prng.int rng (Array.length labels))
        (List.init fanout (fun _ -> glue (depth - 1)))
    end
  in
  (* A fresh (non-duplicate) entry: either an independent random tree, or
     — when the profile uses mother templates — a decayed sample of a
     random mother (schema-shared corpora). *)
  let fresh () =
    if profile.fragment_pool > 0 then glue profile.fragment_depth
    else if n_mothers = 0 then Generator.random_tree rng profile.params
    else begin
      let mother = mothers.(Prng.int rng n_mothers) in
      let target =
        let p = profile.params in
        let t = float_of_int p.Generator.avg_size in
        let lo = int_of_float (t *. (1.0 -. p.Generator.size_jitter)) in
        let hi = int_of_float (t *. (1.0 +. p.Generator.size_jitter)) in
        Prng.int_in rng (max 1 lo) (max 1 hi)
      in
      let sampled = Generator.Mother.sample rng mother ~target_size:target in
      Decay.perturb rng ~dz:profile.dz ~labels sampled
    end
  in
  let out = Array.make (max n 1) (Tsj_tree.Tree.leaf (Tsj_tree.Label.intern "L0")) in
  for i = 0 to n - 1 do
    (* Real corpora are near-duplicate heavy; with probability [dup_rate]
       the next entry is a lightly edited copy of an earlier one (forming
       similarity clusters), otherwise a fresh mother sample. *)
    if i > 0 && Prng.float rng < profile.dup_rate then begin
      let src = out.(Prng.int rng i) in
      (* An exact re-submission ([dup_exact] share of the duplicates;
         the extra draw is gated so profiles without exact duplicates
         keep their historical random stream) or a lightly edited copy. *)
      if profile.dup_exact > 0.0 && Prng.float rng < profile.dup_exact then
        out.(i) <- src
      else begin
        let k = binomial rng (Tsj_tree.Tree.size src) profile.dup_dz in
        let _, copy = Tsj_tree.Edit_op.random_script rng ~labels k src in
        out.(i) <- copy
      end
    end
    else out.(i) <- fresh ()
  done;
  if n = 0 then [||] else out

let with_params profile params = { profile with params }

let describe trees =
  let n = Array.length trees in
  if n = 0 then "empty dataset"
  else begin
    let sizes = Array.map (fun t -> float_of_int (Tree.size t)) trees in
    let depths = Array.map (fun t -> float_of_int (Tree.depth t)) trees in
    let module S = Set.Make (Int) in
    let labels =
      Array.fold_left
        (fun acc t -> List.fold_left (fun acc l -> S.add l acc) acc (Tree.label_set t))
        S.empty trees
    in
    let _, max_depth = Tsj_util.Statistics.min_max depths in
    Printf.sprintf
      "%d trees, avg size %.2f, distinct labels %d, avg depth %.2f, max depth %.0f" n
      (Tsj_util.Statistics.mean sizes)
      (S.cardinal labels)
      (Tsj_util.Statistics.mean depths)
      max_depth
  end
