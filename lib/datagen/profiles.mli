(** Dataset profiles: deterministic stand-ins for the paper's corpora.

    The original corpora are not redistributable/offline-available, so each
    profile reproduces the *published statistics* of its namesake (average
    size, label alphabet, average/maximum depth, shape class) with the
    mother-tree sampling model of {!Generator.Mother} plus the decay
    perturbation — see DESIGN.md, substitution 2.  The paper's numbers:

    - Swissprot: 100K flat, medium trees — avg size 62.37, 84 labels,
      avg depth 2.65, max depth 4;
    - Treebank: 50K small deep trees — avg size 45.12, 218 labels,
      avg depth 6.93, max depth 35;
    - Sentiment: 10K tagged sentences — avg size 37.31, 5 labels,
      avg depth 10.84, max depth 30;
    - Synthetic: 10K trees — fanout 3, depth 5, 20 labels, size 80,
      decay 0.05.

    Several mother trees are used per dataset (controlled by
    [mothers_per_1000]) so that similarity is clustered rather than
    global. *)

type t = {
  name : string;
  params : Generator.params;
  dz : float;                (** decay probability applied to every tree *)
  mothers_per_1000 : int;    (** template diversity per 1000 trees; 0 =
                                 independent random trees (no templates) *)
  dup_rate : float;          (** probability that an entry is a lightly
                                 edited copy of an earlier entry — real
                                 corpora are near-duplicate heavy, and this
                                 is what makes the join result non-empty *)
  dup_dz : float;            (** per-node edit probability for such copies *)
  dup_exact : float;         (** share of the duplicate copies that are
                                 exact re-submissions (no edits) — the
                                 whole-tree repetition that store dedup and
                                 the TED fast paths exploit; 0 = none *)
  default_cardinality : int; (** the paper's dataset size *)
  fragment_pool : int;       (** size of the shared subtree-fragment pool;
                                 0 = off.  When > 0, every fresh tree is a
                                 shallow glue scaffold over pool fragments,
                                 so identical subtrees recur across the
                                 whole collection (the workload the DAG
                                 compression layer targets) *)
  fragment_depth : int;      (** depth of the glue scaffold above the
                                 pooled fragments *)
}

val swissprot : t
val treebank : t
val sentiment : t
val synthetic : t

val redundant : t
(** Subtree-repetition-heavy profile: trees composed from a small shared
    fragment pool ([fragment_pool = 32], [fragment_depth = 2]) plus
    near-duplicate copies, half of which are exact re-submissions
    ([dup_exact = 0.5]) — the before/after workload of the [bench dag]
    experiment. *)

val all : t list

val find : string -> t option
(** Look up by (case-insensitive) name. *)

val instantiate : t -> seed:int -> n:int -> Tsj_tree.Tree.t array
(** Generate [n] trees deterministically from [seed]. *)

val with_params : t -> Generator.params -> t
(** Same profile with overridden generator parameters (sensitivity
    sweeps). *)

val describe : Tsj_tree.Tree.t array -> string
(** Human-readable summary (count, avg size, avg/max depth, labels) in the
    format of the paper's dataset descriptions. *)
