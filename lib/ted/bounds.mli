(** Lower and upper bounds on the tree edit distance, and the staged
    verification filter cascade built from them.

    Every lower bound satisfies [bound t1 t2 <= TED(t1, t2)] (so
    [bound > τ] prunes a candidate pair without an exact TED
    computation); {!Compiled.upper} satisfies [upper t1 t2 >= TED(t1, t2)]
    (so [upper <= τ] certifies a result pair).  The tests validate both
    inequalities on random tree pairs.

    Provenance of each lower bound:
    - size: one edit operation changes the node count by at most 1;
    - label histogram: one operation changes the label bag's L1 distance by
      at most 2 (rename removes one label and adds another);
    - degree histogram: one operation changes the degree bag's L1 distance
      by at most 3 (the reconnected parent's degree moves, and a node
      appears or disappears);
    - preorder / postorder strings: Guha et al. — each operation edits the
      traversal label sequence in exactly one position;
    - Euler string: Akutsu et al. — each operation edits the Euler tour in
      at most two positions. *)

(** Per-tree forms compiled once (during join preprocessing) so that the
    pairwise bounds run with zero per-pair allocation: sorted label and
    degree multisets, traversal label arrays, the Euler string, and the
    child/size arrays of the greedy-mapping upper bound. *)
module Compiled : sig
  type t

  val of_tree : Tsj_tree.Tree.t -> t

  val size : t -> int
  (** Node count of the compiled tree. *)

  val preorder : t -> int array
  (** The compiled preorder label sequence (shared — do not mutate). *)

  val size_bound : t -> t -> int

  val label_bound : t -> t -> int

  val degree_bound : t -> t -> int

  val traversal_bound : t -> t -> int
  (** [max preorder_sed postorder_sed] — the STR filter (unbanded). *)

  val euler_bound : t -> t -> int

  val best : t -> t -> int
  (** Maximum of all the lower bounds above. *)

  val upper : t -> t -> int
  (** Greedy-mapping upper bound: cost of the edit script that renames
      mismatched roots, edits children matched position by position and
      deletes/inserts the unmatched tails.  The script's mapping sends
      disjoint subtrees to disjoint subtrees, so
      [TED <= constrained distance <= upper]. *)

  (** Cascade stage that rejected a pair (for the per-stage counters). *)
  type stage = Size | Labels | Degrees | Sed

  type outcome =
    | Pruned of stage  (** some lower bound exceeds τ: not a result *)
    | Accept of int
        (** the bounds sandwich closed (lower = upper <= τ): a result
            with exactly this distance, no kernel run *)
    | Verify of { band : int }
        (** undecided: run the exact kernel with this band threshold
            ([band = τ], or [band = upper - 1 < τ] when the upper bound
            already admits the pair — the banded kernel then still
            returns the exact distance since [TED <= upper]) *)

  val cascade : tau:int -> t -> t -> outcome
  (** The staged verifier, cheapest first with short-circuit:
      size → label histogram → degree histogram → banded traversal SED →
      greedy upper bound.  Lossless for the TED verifier and for any
      metric wedged between TED and the greedy script cost (e.g. the
      constrained edit distance).
      @raise Invalid_argument if [tau < 0]. *)
end

(** {2 Per-pair convenience entry points}

    Each compiles both trees on every call.
    @deprecated for join inner loops — compile once with
    {!Compiled.of_tree} and use the pairwise functions of {!Compiled}. *)

val size : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int

val label_histogram : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int

val degree_histogram : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int

val preorder_string : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int

val postorder_string : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int

val traversal : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int
(** [max preorder_string postorder_string] — the STR filter. *)

val euler_string : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int

val best : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int
(** Maximum of all the lower bounds above (compiles each tree once and
    shares the compiled forms across the bounds). *)

val upper : Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int
(** Per-pair form of {!Compiled.upper}. *)
