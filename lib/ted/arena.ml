(* Per-domain scratch arenas for the verification kernels.

   Every DP kernel in this library (the Zhang–Shasha tree edit distance,
   its τ-banded variant, and the banded string edit distance used by the
   filter cascade) needs flat integer working storage whose size depends
   on the input pair.  Allocating it per call costs a major-heap
   allocation and an O(table) initialization per verified candidate,
   which at join scale dominates the banded kernels' actual O(band) work.

   Instead each domain owns exactly one arena, reached through
   [Domain.DLS]: the pool workers of [Tsj_join.Pool] are long-lived
   domains, so in steady state verification performs no DP-table
   allocation at all — the buffers grow monotonically (doubling) to the
   high-water mark of the tree sizes seen by that domain and are then
   reused without clearing.  Kernels are responsible for never reading a
   cell they did not write in the current call (see the stamp protocol in
   [Zhang_shasha]); the arena only guarantees capacity. *)

type t = {
  (* Zhang–Shasha matrices, row stride [cols]. *)
  mutable td : int array; (* treedist values *)
  mutable td_stamp : int array; (* call serial that wrote each td cell *)
  mutable fd : int array; (* forest-distance table *)
  mutable rows : int; (* allocated rows, >= n1 + 1 *)
  mutable cols : int; (* allocated columns, >= n2 + 1 *)
  mutable serial : int; (* bounded-call counter for td stamps *)
  (* Rolling rows of the banded string-edit DP. *)
  mutable band_prev : int array;
  mutable band_cur : int array;
}

let create () =
  {
    td = [||];
    td_stamp = [||];
    fd = [||];
    rows = 0;
    cols = 0;
    serial = 0;
    band_prev = [||];
    band_cur = [||];
  }

let key = Domain.DLS.new_key create

let get () = Domain.DLS.get key

let reserve_matrices a n1 n2 =
  if n1 + 1 > a.rows || n2 + 1 > a.cols then begin
    let cap = Array.length a.td in
    if (n1 + 1) * (n2 + 1) <= cap then begin
      (* The slabs are big enough, only the shape is wrong (e.g. a
         taller-but-narrower pair after a short-and-wide one): reshape
         in place instead of reallocating all three slabs.  With
         [cols = cap / (n1 + 1)] we get [cols >= n2 + 1] (because
         [(n1 + 1) * (n2 + 1) <= cap]) and [rows = cap / cols >= n1 + 1]
         (because [cols * (n1 + 1) <= cap]), and [rows * cols <= cap]
         keeps every flat offset within the existing arrays.  The stamp
         protocol survives the stride change: [serial] is never reset,
         so every cell written under the old shape carries a stamp
         strictly below the next call's id and reads as stale. *)
      let cols = cap / (n1 + 1) in
      a.cols <- cols;
      a.rows <- cap / cols
    end
    else begin
      let rows = max (n1 + 1) (2 * a.rows) in
      let cols = max (n2 + 1) (2 * a.cols) in
      a.td <- Array.make (rows * cols) 0;
      a.td_stamp <- Array.make (rows * cols) 0;
      a.fd <- Array.make (rows * cols) 0;
      a.rows <- rows;
      a.cols <- cols
    end
  end

let next_serial a =
  a.serial <- a.serial + 1;
  a.serial

let reserve_bands a width =
  if Array.length a.band_prev < width then begin
    let cap = max width (2 * Array.length a.band_prev) in
    a.band_prev <- Array.make cap 0;
    a.band_cur <- Array.make cap 0
  end
