(* Cross-pair memo cache for the bounded TED kernel.

   The Zhang–Shasha DP solves one subproblem per keyroot pair; over a
   hash-consed collection the same (subtree, subtree) keyroot pairs
   recur across many candidate pairs, so their solutions can be reused
   across kernel calls.  What must be reused is not just the root
   treedist cell: [compute k1 k2] writes the td cells of every left-path
   pair inside the two subtrees, and later (ancestor) keyroot pairs read
   them.  An entry therefore stores the exact td *write-set* of one
   keyroot-pair computation — (row offset, column offset, value) triples
   relative to the two leftmost leaves — and a hit replays every write
   (values and stamps), which is bit-identical to running the DP:

   - every value written is the band-clamped distance between the two
     subtrees rooted at the written cell's nodes, a pure function of
     (subtree, subtree, clamp) — the td cells the DP reads are inside
     the two subtrees and are themselves such values by induction over
     the keyroot order;
   - whether a cell is written at all depends only on the two subtree
     sizes and the clamp (the band is relative to the leftmost leaves),
     so the stamped set is reproduced exactly;
   - the fd table never leaks between keyroot pairs (written before
     read within one pair), so it needs no memoization.

   Entries are keyed by (Dag id, Dag id, clamp).  Dag ids are globally
   unique (one process-wide counter), so a per-domain cache can outlive
   any single join or collection without ever aliasing.  The cache is
   bounded both in entries and in total stored words, evicted by a
   clock (second-chance) sweep; hit/miss/eviction counters are global
   atomics that [Partsj] snapshots into the join statistics. *)

type entry = {
  e_id1 : int;
  e_id2 : int;
  e_k : int;
  e_writes : int array; (* flattened (x_off, y_off, value) triples *)
  mutable e_ref : bool; (* clock reference bit *)
}

type t = {
  tbl : (int * int * int, int) Hashtbl.t; (* key -> slot *)
  slots : entry option array;
  mutable free : int list;
  mutable hand : int;
  mutable used : int;
  mutable words : int;
  max_slots : int;
  max_words : int;
  results : (int * int * int, int) Hashtbl.t;
      (* whole-pair cache: (id1, id2, clamp) -> final clamped distance.
         The kernel's return value is a pure function of the two trees
         and the clamp, so duplicate candidate pairs (ubiquitous on
         redundant collections) skip the whole DP, not just its keyroot
         subproblems.  Entries are one int each; reset wholesale when
         the entry bound is hit. *)
  max_results : int;
}

let default_slots = 4096

(* 2M words ≈ 16 MB of cached triples per domain. *)
let default_words = 1 lsl 21

let default_results = 1 lsl 16

let create ?(slots = default_slots) ?(words = default_words)
    ?(results = default_results) () =
  if slots < 1 then invalid_arg "Memo.create: slots must be >= 1";
  if words < 3 then invalid_arg "Memo.create: words must be >= 3";
  if results < 1 then invalid_arg "Memo.create: results must be >= 1";
  {
    tbl = Hashtbl.create (2 * slots);
    slots = Array.make slots None;
    free = List.init slots Fun.id;
    hand = 0;
    used = 0;
    words = 0;
    max_slots = slots;
    max_words = words;
    results = Hashtbl.create 1024;
    max_results = results;
  }

let key = Domain.DLS.new_key (fun () -> create ())

let get () = Domain.DLS.get key

let hits = Atomic.make 0

let misses = Atomic.make 0

let evictions = Atomic.make 0

let used t = t.used

let words t = t.words

let find t ~id1 ~id2 ~k =
  match Hashtbl.find_opt t.tbl (id1, id2, k) with
  | Some slot ->
    let e = Option.get t.slots.(slot) in
    e.e_ref <- true;
    Atomic.incr hits;
    Some e.e_writes
  | None ->
    Atomic.incr misses;
    None

(* Advance the clock hand to a victim slot (occupied, reference bit
   clear), clearing reference bits on the way — terminates within two
   sweeps.  The freed slot index goes on the free list. *)
let evict_one t =
  let rec go () =
    let i = t.hand in
    t.hand <- (t.hand + 1) mod t.max_slots;
    match t.slots.(i) with
    | None -> go ()
    | Some e ->
      if e.e_ref then begin
        e.e_ref <- false;
        go ()
      end
      else begin
        Hashtbl.remove t.tbl (e.e_id1, e.e_id2, e.e_k);
        t.slots.(i) <- None;
        t.free <- i :: t.free;
        t.used <- t.used - 1;
        t.words <- t.words - Array.length e.e_writes;
        Atomic.incr evictions
      end
  in
  if t.used > 0 then go ()

let find_result t ~id1 ~id2 ~k =
  match Hashtbl.find_opt t.results (id1, id2, k) with
  | Some v ->
    Atomic.incr hits;
    Some v
  | None ->
    Atomic.incr misses;
    None

let add_result t ~id1 ~id2 ~k v =
  if Hashtbl.length t.results >= t.max_results then Hashtbl.reset t.results;
  Hashtbl.replace t.results (id1, id2, k) v

let results t = Hashtbl.length t.results

let add t ~id1 ~id2 ~k writes =
  let len = Array.length writes in
  if len <= t.max_words && not (Hashtbl.mem t.tbl (id1, id2, k)) then begin
    while t.used >= t.max_slots || t.words + len > t.max_words do
      evict_one t
    done;
    match t.free with
    | [] -> assert false (* used < max_slots implies a free slot *)
    | slot :: rest ->
      t.free <- rest;
      t.slots.(slot) <- Some { e_id1 = id1; e_id2 = id2; e_k = k; e_writes = writes; e_ref = false };
      Hashtbl.replace t.tbl (id1, id2, k) slot;
      t.used <- t.used + 1;
      t.words <- t.words + len
  end
