module Tree = Tsj_tree.Tree
module Dag = Tsj_tree.Dag
module Postorder = Tsj_tree.Postorder

type algorithm = Zs_left | Zs_right | Hybrid | Naive

type prep = {
  tree : Tree.t;
  size : int;
  left_po : Postorder.t;
  right_po : Postorder.t; (* postorder form of the mirrored tree *)
  left_cost : int;        (* keyroot cost of the left decomposition *)
  right_cost : int;
}

(* An interned tree plus its interned mirror.  Mirroring both trees of
   a pair is a bijection on edit scripts, so the right-path
   decomposition is just the kernel run on the mirrors — which
   therefore need DAG ids of their own, from the same store. *)
type consed = { c_node : Dag.node; c_mirror : Dag.node }

let cons dag tree =
  let node = Dag.intern dag tree in
  { c_node = node; c_mirror = Dag.intern dag (Tree.mirror (Dag.tree node)) }

let consed_tree c = Dag.tree c.c_node

let preprocess_consed c =
  let left_po = Postorder.of_dag c.c_node in
  let right_po = Postorder.of_dag c.c_mirror in
  {
    (* The shared view: structurally equal trees of one store are
       physically equal, which is what the collection-level dedup and
       the [Constrained] fast path key on. *)
    tree = Dag.tree c.c_node;
    size = left_po.size;
    left_po;
    right_po;
    left_cost = Postorder.keyroot_cost left_po;
    right_cost = Postorder.keyroot_cost right_po;
  }

let preprocess ?dag tree =
  match dag with
  | Some d -> preprocess_consed (cons d tree)
  | None ->
    let left_po = Postorder.of_tree tree in
    let right_po = Postorder.of_tree (Tree.mirror tree) in
    {
      tree;
      size = left_po.size;
      left_po;
      right_po;
      left_cost = Postorder.keyroot_cost left_po;
      right_cost = Postorder.keyroot_cost right_po;
    }

let tree p = p.tree

let size p = p.size

let distance_prep ?(algorithm = Hybrid) p1 p2 =
  match algorithm with
  | Zs_left -> Zhang_shasha.distance_postorder p1.left_po p2.left_po
  | Zs_right -> Zhang_shasha.distance_postorder p1.right_po p2.right_po
  | Naive -> Naive.distance p1.tree p2.tree
  | Hybrid ->
    (* Mirroring both trees is a bijection on edit scripts, so both
       decompositions yield the same distance; run the one with fewer
       relevant subproblems. *)
    if p1.left_cost * p2.left_cost <= p1.right_cost * p2.right_cost then
      Zhang_shasha.distance_postorder p1.left_po p2.left_po
    else Zhang_shasha.distance_postorder p1.right_po p2.right_po

let distance ?algorithm t1 t2 =
  distance_prep ?algorithm (preprocess t1) (preprocess t2)

let bounded_distance_prep ?(algorithm = Hybrid) p1 p2 k =
  match algorithm with
  | Zs_left -> Zhang_shasha.bounded_distance_postorder p1.left_po p2.left_po k
  | Zs_right -> Zhang_shasha.bounded_distance_postorder p1.right_po p2.right_po k
  | Naive -> min (Naive.distance p1.tree p2.tree) (k + 1)
  | Hybrid ->
    if p1.left_cost * p2.left_cost <= p1.right_cost * p2.right_cost then
      Zhang_shasha.bounded_distance_postorder p1.left_po p2.left_po k
    else Zhang_shasha.bounded_distance_postorder p1.right_po p2.right_po k

let within ?algorithm p1 p2 tau =
  if tau < 0 then false
  else if abs (p1.size - p2.size) > tau then false
  else bounded_distance_prep ?algorithm p1 p2 tau <= tau
