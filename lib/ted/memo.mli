(** Bounded cross-pair memo cache for the τ-banded TED kernel.

    Keyed by ({!Tsj_tree.Dag} node id, node id, clamp), an entry holds
    the exact treedist write-set of one keyroot-pair computation as
    (row offset, column offset, value) triples relative to the two
    subtrees' leftmost leaves; a hit replays the writes (values and
    stamps), which is bit-identical to running the DP — see the proof
    sketch in [memo.ml].  One cache per domain (via [Domain.DLS]),
    sitting next to {!Arena}; Dag ids are globally unique, so a cache
    safely outlives any single collection or join.  Bounded in both
    entries and total stored words with clock (second-chance)
    eviction. *)

type t

val create : ?slots:int -> ?words:int -> ?results:int -> unit -> t
(** A standalone cache (tests); the kernel uses {!get}.  [slots] bounds
    the entry count (default 4096), [words] the total stored triples
    (default [2^21] ints ≈ 16 MB), [results] the whole-pair result
    entries (default [2^16]; the table is reset wholesale when full).
    @raise Invalid_argument if [slots < 1], [words < 3] or
    [results < 1]. *)

val get : unit -> t
(** The calling domain's cache (created on first use). *)

val find : t -> id1:int -> id2:int -> k:int -> int array option
(** The write-set recorded for this (subtree, subtree, clamp), if
    cached.  Counts a global hit or miss and marks the entry recently
    used.  The returned array must not be mutated. *)

val add : t -> id1:int -> id2:int -> k:int -> int array -> unit
(** Insert a write-set, evicting until it fits; oversized write-sets
    (longer than the word bound) and duplicate keys are ignored. *)

val find_result : t -> id1:int -> id2:int -> k:int -> int option
(** The whole-pair clamped distance for (tree, tree, clamp), if cached.
    The kernel's return value is a pure function of the key, so a hit
    skips the entire DP of a duplicate candidate pair.  Counts a global
    hit or miss. *)

val add_result : t -> id1:int -> id2:int -> k:int -> int -> unit
(** Insert a whole-pair result; when the result table is full it is
    reset wholesale first (entries are single ints — losing them only
    costs recomputation). *)

val results : t -> int
(** Whole-pair results currently cached. *)

val used : t -> int
(** Entries currently cached. *)

val words : t -> int
(** Total triple words currently cached. *)

val hits : int Atomic.t
(** Process-wide hit counter (all domains). *)

val misses : int Atomic.t

val evictions : int Atomic.t
