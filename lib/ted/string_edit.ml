let distance a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    (* Keep the shorter sequence as the row dimension. *)
    let a, b, la, lb = if la <= lb then (a, b, la, lb) else (b, a, lb, la) in
    let prev = Array.init (la + 1) (fun i -> i) in
    let cur = Array.make (la + 1) 0 in
    for j = 1 to lb do
      cur.(0) <- j;
      let bj = b.(j - 1) in
      for i = 1 to la do
        let cost = if a.(i - 1) = bj then 0 else 1 in
        cur.(i) <- min (min (cur.(i - 1) + 1) (prev.(i) + 1)) (prev.(i - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (la + 1)
    done;
    prev.(la)
  end

(* Banded DP (Ukkonen): a cell (i, j) with |i - j| > k cannot lie on a path
   of cost <= k, so only the (2k+1)-wide diagonal band is filled; cells
   outside the band act as infinity.  Row [i] ranges over prefixes of [a];
   slot [j - i + k] of the row array holds D(i, j).

   The two rolling rows come from the per-domain {!Arena}: this runs once
   or twice per candidate pair in the join's filter cascade, and the
   per-call allocation of the rows used to be most of its cost.  Every
   slot of both rows is (re)initialized below, so stale arena contents
   are never observed. *)
let bounded_distance a b k =
  if k < 0 then invalid_arg "String_edit.bounded_distance: negative threshold";
  let la = Array.length a and lb = Array.length b in
  if abs (la - lb) > k then k + 1
  else begin
    let inf = k + 1 in
    let width = (2 * k) + 1 in
    let arena = Arena.get () in
    Arena.reserve_bands arena width;
    let prev = arena.Arena.band_prev and cur = arena.Arena.band_cur in
    Array.fill prev 0 width inf;
    (* Row 0: D(0, j) = j for 0 <= j <= k; slot = j + k... slots j - 0 + k. *)
    for j = 0 to min k lb do
      prev.(j + k) <- j
    done;
    for i = 1 to la do
      Array.fill cur 0 width inf;
      let jlo = max 0 (i - k) and jhi = min lb (i + k) in
      let ai = a.(i - 1) in
      for j = jlo to jhi do
        let s = j - i + k in
        let best = ref inf in
        (* delete a.(i-1): D(i-1, j) + 1, prev slot s + 1 *)
        if s + 1 < width then best := min !best (prev.(s + 1) + 1);
        (* insert b.(j-1): D(i, j-1) + 1, cur slot s - 1 *)
        if j >= 1 && s - 1 >= 0 then best := min !best (cur.(s - 1) + 1);
        (* substitute / match: D(i-1, j-1) + cost, prev slot s *)
        if j >= 1 then begin
          let cost = if ai = b.(j - 1) then 0 else 1 in
          best := min !best (prev.(s) + cost)
        end;
        if j = 0 then best := min !best i;
        cur.(s) <- min !best inf
      done;
      Array.blit cur 0 prev 0 width
    done;
    let final = lb - la + k in
    min prev.(final) inf
  end

let within a b k = if k < 0 then false else bounded_distance a b k <= k
