(** Per-domain reusable scratch for the DP verification kernels.

    One arena per domain (via [Domain.DLS]); the long-lived pool workers
    of [Tsj_join.Pool] therefore each own one, and steady-state
    verification allocates no DP tables.  Buffers grow monotonically
    (doubling) and are reused without clearing — kernels must only read
    cells they wrote in the current call (the stamp protocol of
    {!Zhang_shasha}) or cells they initialize themselves. *)

type t = {
  mutable td : int array;  (** treedist values, row stride [cols] *)
  mutable td_stamp : int array;  (** call serial that wrote each td cell *)
  mutable fd : int array;  (** forest-distance table, row stride [cols] *)
  mutable rows : int;  (** allocated rows *)
  mutable cols : int;  (** allocated columns *)
  mutable serial : int;  (** bounded-call counter for the td stamps *)
  mutable band_prev : int array;  (** banded string-edit DP, previous row *)
  mutable band_cur : int array;  (** banded string-edit DP, current row *)
}

val get : unit -> t
(** The calling domain's arena (created on first use). *)

val reserve_matrices : t -> int -> int -> unit
(** [reserve_matrices a n1 n2] ensures [a.rows > n1] and [a.cols > n2].
    When the existing slabs already hold [(n1 + 1) * (n2 + 1)] cells the
    matrices are reshaped in place (the row stride changes, nothing is
    reallocated); otherwise all three slabs grow by doubling.  Either
    way previously written cells are stale — the serial counter is never
    reset, so the stamp protocol stays sound across both paths. *)

val next_serial : t -> int
(** Fresh per-call serial for the [td_stamp] protocol. *)

val reserve_bands : t -> int -> unit
(** [reserve_bands a w] ensures both band rows hold at least [w] cells. *)
