module Postorder = Tsj_tree.Postorder
module Vec_int = Tsj_util.Vec_int

(* DP scratch.

   The two tables of the Zhang–Shasha DP — treedist (n1 × n2) and the
   forest-distance table fd ((n1+1) × (n2+1)) — used to be allocated per
   call.  For join-sized trees that is ~100 KB of major-heap allocation
   and an O(n1·n2) initialization per verified pair, which dominates the
   τ-banded verifier whose actual DP work is only O(rows · (2τ+1)) cells
   per keyroot pair.  Instead both kernels draw on the per-domain
   {!Arena} (pool workers are domains, so concurrent verification is
   safe) and the tables are reused without clearing:

   - [fd] needs no initialization at all: every cell the DP reads is
     either written earlier in the same keyroot-pair computation or
     rejected by the band check (bounded variant) / the first-row and
     first-column writes (unbounded variant).
   - [td] (treedist) in the unbounded variant is only read for subtree
     pairs computed earlier in the same call (the keyroot-order
     invariant), so stale values are never observed.  The bounded variant
     must distinguish "computed this call" from "out of band" (which
     defaults to the clamp value), so each cell carries a stamp: the
     serial number of the call that wrote it.  Stale stamps read as the
     clamp, exactly like the former fresh-[inf] matrix. *)

(* Both DP kernels below use [Array.unsafe_get]/[unsafe_set] on the
   scratch tables and the postorder arrays.  Safety: [Arena.reserve_matrices]
   guarantees [rows > n1] and [cols > n2]; every flat offset is [x * stride + y] or
   [a * stride + b] with [x, a <= n1 - 1 < rows] and [y, b <= n2 - 1 <
   cols], hence [< rows * cols]; and [a] ranges over [l1 .. k1] within
   [0 .. n1), [b] over [l2 .. k2] within [0 .. n2), the index ranges of
   the lld / label arrays.  The join verifier spends nearly all its time
   in these loops, and the bounds checks were a measurable fraction of
   the per-cell cost. *)

(* Are both postorders DAG-annotated (built by [Postorder.of_dag])?
   Only then do the equal-subtree fast path and the memo cache apply:
   Dag ids are globally unique, so equal ids mean equal subtrees even
   across collections. *)
let consed (p1 : Postorder.t) (p2 : Postorder.t) =
  Array.length p1.dag = p1.size && Array.length p2.dag = p2.size

let distance_postorder (p1 : Postorder.t) (p2 : Postorder.t) =
  let n1 = p1.size and n2 = p2.size in
  if n1 = 0 || n2 = 0 then max n1 n2
  else if consed p1 p2 && p1.dag.(n1 - 1) = p2.dag.(n2 - 1) then
    (* Identical interned trees: distance 0 without any DP. *)
    0
  else begin
    let s = Arena.get () in
    Arena.reserve_matrices s n1 n2;
    let stride = s.Arena.cols in
    let lld1 = p1.lld and lld2 = p2.lld in
    let lab1 = p1.labels and lab2 = p2.labels in
    (* td.(i*stride + j): TED between the subtrees rooted at postorder
       nodes i and j; filled in increasing keyroot order, so the forest DP
       only ever reads entries written earlier in this call. *)
    let td = s.Arena.td and fd = s.Arena.fd in
    let compute k1 k2 =
      let l1 = lld1.(k1) and l2 = lld2.(k2) in
      let m = k1 - l1 + 1 and n = k2 - l2 + 1 in
      if m = 1 && n = 1 then
        (* Leaf keyroot pair: the single DP cell reduces to
           min (2, label cost) = label cost. *)
        Array.unsafe_set td ((k1 * stride) + k2)
          (if Array.unsafe_get lab1 k1 = Array.unsafe_get lab2 k2 then 0 else 1)
      else begin
      fd.(0) <- 0;
      for x = 1 to m do
        Array.unsafe_set fd (x * stride) x
      done;
      for y = 1 to n do
        Array.unsafe_set fd y y
      done;
      for x = 1 to m do
        let a = l1 + x - 1 in
        let la = Array.unsafe_get lld1 a in
        let on_path1 = la = l1 in
        let lab_a = Array.unsafe_get lab1 a in
        let row = x * stride and prev = (x - 1) * stride in
        for y = 1 to n do
          let b = l2 + y - 1 in
          let lb = Array.unsafe_get lld2 b in
          let up = Array.unsafe_get fd (prev + y) in
          let left = Array.unsafe_get fd (row + y - 1) in
          if on_path1 && lb = l2 then begin
            let cost = if lab_a = Array.unsafe_get lab2 b then 0 else 1 in
            let v =
              min (min (up + 1) (left + 1)) (Array.unsafe_get fd (prev + y - 1) + cost)
            in
            Array.unsafe_set fd (row + y) v;
            Array.unsafe_set td ((a * stride) + b) v
          end
          else begin
            let x' = la - l1 and y' = lb - l2 in
            Array.unsafe_set fd (row + y)
              (min
                 (min (up + 1) (left + 1))
                 (Array.unsafe_get fd ((x' * stride) + y')
                 + Array.unsafe_get td ((a * stride) + b)))
          end
        done
      done
      end
    in
    Array.iter
      (fun k1 -> Array.iter (fun k2 -> compute k1 k2) p2.keyroots)
      p1.keyroots;
    td.(((n1 - 1) * stride) + (n2 - 1))
  end

(* Threshold-banded variant.  Every forest-DP cell (x, y) measures the
   distance between prefix forests of sizes x and y, which is at least
   |x - y|; a cell outside the |x - y| <= k band therefore cannot lie on a
   path of total cost <= k.  The DP is a monotone min-plus recurrence, so
   clamping every value at k + 1 preserves all values <= k exactly while
   capping the rest — the result is [min (distance, k + 1)] at a cost of
   O(rows * (2k + 1)) cells per keyroot pair instead of O(rows * cols). *)
(* Largest memoizable write-set, in stored ints (3 per write).  Bounds
   both the recording overhead and the size of one cache entry; the
   bound on writes of one keyroot pair is
   [min m (n + k) * min n (2k + 1)] (row loop bound × in-band left-path
   cells per row). *)
let max_entry_words = 3 * 8192

(* Smallest banded-DP cell count worth memoizing.  Below this the
   constant costs of a memo dispatch (key hashing, write-set recording
   on a miss, entry allocation and clock eviction) exceed the DP work a
   hit saves, so tiny keyroot pairs run unrecorded.  Tuned on the
   [redundant] bench profile (tau = 3). *)
let min_entry_cells = 96

let bounded_distance_postorder (p1 : Postorder.t) (p2 : Postorder.t) k =
  if k < 0 then invalid_arg "Zhang_shasha.bounded_distance_postorder: negative threshold";
  let n1 = p1.size and n2 = p2.size in
  if abs (n1 - n2) > k then k + 1
  else if n1 = 0 || n2 = 0 then min (max n1 n2) (k + 1)
  else if consed p1 p2 && p1.dag.(n1 - 1) = p2.dag.(n2 - 1) then
    (* Identical interned trees: distance 0 without any DP. *)
    0
  else begin
    let dp () =
    let s = Arena.get () in
    Arena.reserve_matrices s n1 n2;
    let id = Arena.next_serial s in
    let stride = s.Arena.cols in
    let inf = k + 1 in
    let dagged = consed p1 p2 in
    let dag1 = p1.dag and dag2 = p2.dag in
    let memo = if dagged then Some (Memo.get ()) else None in
    let buf = if dagged then Some (Vec_int.create ()) else None in
    let lld1 = p1.lld and lld2 = p2.lld in
    let lab1 = p1.labels and lab2 = p2.labels in
    let td = s.Arena.td and td_stamp = s.Arena.td_stamp and fd = s.Arena.fd in
    (* td entries not written during this call correspond to out-of-band
       subtree pairs, whose distance exceeds k: read as the clamp value. *)
    let td_get a b =
      let off = (a * stride) + b in
      if Array.unsafe_get td_stamp off = id then Array.unsafe_get td off else inf
    in
    (* In-band read; out-of-band cells are >= |x - y| > k by the size
       argument, so they act as the clamp value.  In-band cells are
       always written before they are read within this keyroot pair, so
       the uncleared scratch is never observed.  Defined once per call:
       a definition inside [compute] would allocate a closure per
       keyroot pair, and most passes are only a handful of cells. *)
    let get x y = if abs (x - y) > k then inf else Array.unsafe_get fd ((x * stride) + y) in
    (* The DP body of one keyroot pair.  With [record] set, every td
       write is additionally logged into [buf] as an (x_off, y_off,
       value) triple relative to (l1, l2) — the memo entry replayed by
       later kernel calls on the same (subtree, subtree, clamp). *)
    let compute k1 k2 record =
      let l1 = lld1.(k1) and l2 = lld2.(k2) in
      let m = k1 - l1 + 1 and n = k2 - l2 + 1 in
      if m = 1 && n = 1 then begin
        (* Leaf keyroot pair: the single DP cell reduces to
           min (2, label cost) = label cost. *)
        let off = (k1 * stride) + k2 in
        let v = if Array.unsafe_get lab1 k1 = Array.unsafe_get lab2 k2 then 0 else 1 in
        Array.unsafe_set td off v;
        Array.unsafe_set td_stamp off id;
        if record then begin
          let b = Option.get buf in
          Vec_int.push b 0;
          Vec_int.push b 0;
          Vec_int.push b v
        end
      end
      else begin
      fd.(0) <- 0;
      for y = 1 to min n k do
        Array.unsafe_set fd y y
      done;
      (* Rows beyond [n + k] contain no in-band cell, and the treedist
         entries they would write pair subtrees whose sizes differ by more
         than [k] — out of band for every later read, i.e. the clamp
         value.  Skip them. *)
      for x = 1 to min m (n + k) do
        let a = l1 + x - 1 in
        let la = Array.unsafe_get lld1 a in
        let on_path1 = la = l1 in
        let lab_a = Array.unsafe_get lab1 a in
        let ylo = max 1 (x - k) and yhi = min n (x + k) in
        if x <= k then Array.unsafe_set fd (x * stride) x;
        let row = x * stride and prev = (x - 1) * stride in
        (* Within [ylo .. yhi], the up neighbour (x-1, y) leaves the band
           only at [y = x + k], the left neighbour (x, y-1) only at
           [y = x - k], and the diagonal (x-1, y-1) never does — so the
           three reads need one equality test each instead of a full
           band check. *)
        let y_up_out = x + k and y_left_out = x - k in
        for y = ylo to yhi do
          let b = l2 + y - 1 in
          let lb = Array.unsafe_get lld2 b in
          let up = if y = y_up_out then inf else Array.unsafe_get fd (prev + y) in
          let left = if y = y_left_out then inf else Array.unsafe_get fd (row + y - 1) in
          let v =
            if on_path1 && lb = l2 then begin
              let cost = if lab_a = Array.unsafe_get lab2 b then 0 else 1 in
              let diag = Array.unsafe_get fd (prev + y - 1) in
              let v = min (min (up + 1) (left + 1)) (diag + cost) in
              let v = if v > inf then inf else v in
              let off = (a * stride) + b in
              Array.unsafe_set td off v;
              Array.unsafe_set td_stamp off id;
              if record then begin
                let rb = Option.get buf in
                Vec_int.push rb (a - l1);
                Vec_int.push rb (b - l2);
                Vec_int.push rb v
              end;
              v
            end
            else begin
              let x' = la - l1 and y' = lb - l2 in
              let off = (a * stride) + b in
              let tdv =
                if Array.unsafe_get td_stamp off = id then Array.unsafe_get td off else inf
              in
              min (min (up + 1) (left + 1)) (get x' y' + tdv)
            end
          in
          Array.unsafe_set fd (row + y) (if v > inf then inf else v)
        done
      done
      end
    in
    (* Memo dispatch per keyroot pair.  A hit replays the recorded
       write-set — values and stamps land exactly where the DP would
       have put them, so later keyroot pairs (which read these td
       cells) observe a bit-identical table.  A miss runs the DP with
       recording and stores the result.  Tiny pairs and pairs whose
       write-set bound exceeds the entry cap run unrecorded. *)
    let run k1 k2 =
      match memo with
      | None -> compute k1 k2 false
      | Some memo ->
        let l1 = lld1.(k1) and l2 = lld2.(k2) in
        let m = k1 - l1 + 1 and n = k2 - l2 + 1 in
        (* [writes] bounds the recorded entry (and the replay cost of a
           hit); [cells] is the banded DP work a hit saves.  Small pairs
           cost more to hash, record and evict than their DP is worth —
           only pairs clearing [min_entry_cells] enter the memo. *)
        let writes = min m (n + k) * min n ((2 * k) + 1) in
        let cells = min m (n + k) * ((2 * k) + 1) in
        if cells < min_entry_cells || 3 * writes > max_entry_words
        then compute k1 k2 false
        else begin
          let id1 = dag1.(k1) and id2 = dag2.(k2) in
          match Memo.find memo ~id1 ~id2 ~k with
          | Some writes ->
            let nw = Array.length writes in
            let w = ref 0 in
            while !w < nw do
              let x = Array.unsafe_get writes !w in
              let y = Array.unsafe_get writes (!w + 1) in
              let v = Array.unsafe_get writes (!w + 2) in
              let off = ((l1 + x) * stride) + (l2 + y) in
              Array.unsafe_set td off v;
              Array.unsafe_set td_stamp off id;
              w := !w + 3
            done
          | None ->
            let b = Option.get buf in
            Vec_int.clear b;
            compute k1 k2 true;
            Memo.add memo ~id1 ~id2 ~k (Vec_int.to_array b)
        end
    in
    Array.iter
      (fun k1 -> Array.iter (fun k2 -> run k1 k2) p2.keyroots)
      p1.keyroots;
    min (td_get (n1 - 1) (n2 - 1)) inf
    in
    (* Whole-pair shortcut: the clamped result is a pure function of
       (tree, tree, clamp), so on consed inputs duplicate candidate
       pairs — ubiquitous when the collection repeats trees — reuse the
       final value and skip the DP entirely. *)
    if not (consed p1 p2) then dp ()
    else begin
      let memo = Memo.get () in
      let id1 = p1.dag.(n1 - 1) and id2 = p2.dag.(n2 - 1) in
      match Memo.find_result memo ~id1 ~id2 ~k with
      | Some v -> v
      | None ->
        let v = dp () in
        Memo.add_result memo ~id1 ~id2 ~k v;
        v
    end
  end

let distance t1 t2 =
  distance_postorder (Postorder.of_tree t1) (Postorder.of_tree t2)

let bounded_distance t1 t2 k =
  bounded_distance_postorder (Postorder.of_tree t1) (Postorder.of_tree t2) k

let relevant_subproblems p1 p2 =
  Postorder.keyroot_cost p1 * Postorder.keyroot_cost p2
