module Tree = Tsj_tree.Tree

(* Compact per-tree structure: postorder-numbered nodes with children id
   lists and subtree sizes. *)
type compact = {
  n : int;
  labels : int array;
  children : int array array;
  sizes : int array;
  root : int;
}

let compact_of_tree tree =
  let n = Tree.size tree in
  let labels = Array.make n 0 in
  let children = Array.make n [||] in
  let sizes = Array.make n 1 in
  let counter = ref 0 in
  let rec go (node : Tree.t) =
    let kids = List.map go node.children in
    let me = !counter in
    incr counter;
    labels.(me) <- node.label;
    children.(me) <- Array.of_list kids;
    sizes.(me) <- List.fold_left (fun acc c -> acc + sizes.(c)) 1 kids;
    me
  in
  let root = go tree in
  { n; labels; children; sizes; root }

(* Zhang's O(|T1| |T2|) dynamic program.

   d.(i).(j): constrained distance between the subtrees rooted at i, j.
   df.(i).(j): constrained distance between the forests of their children.

   Recurrences (unit costs; [del i] = delete the whole subtree of i,
   [delf i] = delete the whole child forest of i):

   df i j = min
     - alignment of the child sequences, where matching child pair (a, b)
       costs d a b, skipping a child costs its full deletion/insertion;
     - delf j's forest entirely except one child b that swallows all of
       F_i:  delf j - delf b + df i b;
     - symmetrically with one child a of i swallowing F_j.

   d i j = min
     - df i j + (0 or 1 for the root labels);
     - del j - del b + d i b for some child b of j (i's tree maps inside
       one subtree of j, everything else in j inserted);
     - symmetrically for some child a of i. *)
let distance t1 t2 =
  if t1 == t2 then 0
    (* Physically equal trees (the shared views of one [Dag] store make
       duplicates so) are trivially at distance 0. *)
  else
  let a = compact_of_tree t1 and b = compact_of_tree t2 in
  let d = Array.make_matrix a.n b.n 0 in
  let df = Array.make_matrix a.n b.n 0 in
  let del i = a.sizes.(i) in
  let ins j = b.sizes.(j) in
  let delf i = a.sizes.(i) - 1 in
  let insf j = b.sizes.(j) - 1 in
  for i = 0 to a.n - 1 do
    let ca = a.children.(i) in
    let m = Array.length ca in
    for j = 0 to b.n - 1 do
      let cb = b.children.(j) in
      let n = Array.length cb in
      (* --- forest distance --- *)
      let align =
        (* sequence alignment over the child trees *)
        let dp = Array.make_matrix (m + 1) (n + 1) 0 in
        for x = 1 to m do
          dp.(x).(0) <- dp.(x - 1).(0) + del ca.(x - 1)
        done;
        for y = 1 to n do
          dp.(0).(y) <- dp.(0).(y - 1) + ins cb.(y - 1)
        done;
        for x = 1 to m do
          for y = 1 to n do
            dp.(x).(y) <-
              min
                (min
                   (dp.(x - 1).(y) + del ca.(x - 1))
                   (dp.(x).(y - 1) + ins cb.(y - 1)))
                (dp.(x - 1).(y - 1) + d.(ca.(x - 1)).(cb.(y - 1)))
          done
        done;
        dp.(m).(n)
      in
      let best = ref align in
      (* F_i maps entirely inside the forest of one child of j *)
      Array.iter
        (fun cj ->
          let v = insf j - insf cj + df.(i).(cj) in
          if v < !best then best := v)
        cb;
      (* symmetric *)
      Array.iter
        (fun ci ->
          let v = delf i - delf ci + df.(ci).(j) in
          if v < !best then best := v)
        ca;
      df.(i).(j) <- !best;
      (* --- tree distance --- *)
      let rename = if a.labels.(i) = b.labels.(j) then 0 else 1 in
      let best = ref (df.(i).(j) + rename) in
      Array.iter
        (fun cj ->
          let v = ins j - ins cj + d.(i).(cj) in
          if v < !best then best := v)
        cb;
      Array.iter
        (fun ci ->
          let v = del i - del ci + d.(ci).(j) in
          if v < !best then best := v)
        ca;
      d.(i).(j) <- !best
    done
  done;
  d.(a.root).(b.root)

let within t1 t2 k = k >= 0 && distance t1 t2 <= k
