module Tree = Tsj_tree.Tree
module Traversal = Tsj_tree.Traversal
module Multiset = Tsj_util.Multiset

(* --- compiled per-tree forms --- *)

module Compiled = struct
  type t = {
    size : int;
    labels : Multiset.t;
    degrees : Multiset.t;
    pre : int array;
    post : int array;
    euler : int array;
    kids : int array array;
    sizes : int array;
  }

  let of_tree tree =
    let n = Tree.size tree in
    let pre = Array.make n 0 in
    let kids = Array.make n [||] in
    let sizes = Array.make n 1 in
    let degs = Array.make n 0 in
    let counter = ref 0 in
    let rec go (node : Tree.t) =
      let me = !counter in
      incr counter;
      pre.(me) <- node.label;
      let child_ids = List.map go node.children in
      kids.(me) <- Array.of_list child_ids;
      degs.(me) <- List.length node.children;
      sizes.(me) <- List.fold_left (fun acc c -> acc + sizes.(c)) 1 child_ids;
      me
    in
    ignore (go tree);
    {
      size = n;
      labels = Multiset.of_unsorted pre;
      degrees = Multiset.of_unsorted degs;
      pre;
      post = Traversal.postorder_labels tree;
      euler = Traversal.euler_tour tree;
      kids;
      sizes;
    }

  let size c = c.size

  let preorder c = c.pre

  (* Pairwise lower bounds on the compiled forms.  Each runs without any
     per-pair allocation: the multiset bounds are merge walks over the
     sorted arrays, the banded SED draws its rolling rows from the
     per-domain arena. *)

  let size_bound a b = abs (a.size - b.size)

  let label_bound a b = (Multiset.symmetric_difference_size a.labels b.labels + 1) / 2

  let degree_bound a b = (Multiset.symmetric_difference_size a.degrees b.degrees + 2) / 3

  let traversal_bound a b =
    max (String_edit.distance a.pre b.pre) (String_edit.distance a.post b.post)

  let euler_bound a b = (String_edit.distance a.euler b.euler + 1) / 2

  let best a b =
    List.fold_left max 0
      [
        size_bound a b;
        label_bound a b;
        degree_bound a b;
        traversal_bound a b;
        euler_bound a b;
      ]

  (* Greedy-mapping upper bound: rename the roots if their labels differ,
     recursively edit the children matched position by position, and
     delete / insert the unmatched tails.  This is the cost of a concrete
     edit script whose mapping sends disjoint subtrees to disjoint
     subtrees, so it upper-bounds not only the unrestricted TED but also
     every restricted metric whose scripts include it — in particular the
     constrained edit distance, which is what keeps the early-accept
     stage lossless under [Sweep.Constrained].  O(min size) time, zero
     allocation. *)
  let upper a b =
    let pre_a = a.pre and pre_b = b.pre in
    let kids_a = a.kids and kids_b = b.kids in
    let sizes_a = a.sizes and sizes_b = b.sizes in
    let rec go i j =
      let c = ref (if pre_a.(i) = pre_b.(j) then 0 else 1) in
      let ka = kids_a.(i) and kb = kids_b.(j) in
      let m = Array.length ka and n = Array.length kb in
      let shared = if m < n then m else n in
      for x = 0 to shared - 1 do
        c := !c + go ka.(x) kb.(x)
      done;
      for x = shared to m - 1 do
        c := !c + sizes_a.(ka.(x))
      done;
      for x = shared to n - 1 do
        c := !c + sizes_b.(kb.(x))
      done;
      !c
    in
    go 0 0

  (* --- the verification filter cascade --- *)

  type stage = Size | Labels | Degrees | Sed

  type outcome =
    | Pruned of stage
    | Accept of int
    | Verify of { band : int }

  let cascade ~tau a b =
    if tau < 0 then invalid_arg "Bounds.Compiled.cascade: negative threshold";
    (* Stages run cheapest first and short-circuit on the first lower
       bound exceeding τ.  Each stage is a TED lower bound, so pruning is
       lossless; surviving stage values accumulate into [lb]. *)
    let lb = size_bound a b in
    if lb > tau then Pruned Size
    else begin
      let l = label_bound a b in
      if l > tau then Pruned Labels
      else begin
        let lb = max lb l in
        let d = degree_bound a b in
        if d > tau then Pruned Degrees
        else begin
          let lb = max lb d in
          (* Banded traversal SED: each tree edit operation edits the
             preorder (resp. postorder) label sequence in exactly one
             position, so both are TED lower bounds; within the band the
             returned values are exact. *)
          let s1 = String_edit.bounded_distance a.pre b.pre tau in
          if s1 > tau then Pruned Sed
          else begin
            let s2 = String_edit.bounded_distance a.post b.post tau in
            if s2 > tau then Pruned Sed
            else begin
              let lb = max lb (max s1 s2) in
              let ub = upper a b in
              if ub = lb then
                (* The bounds sandwich closes: lb <= TED <= ub = lb, so
                   the exact distance is known without running the
                   kernel (and it also pins every metric between TED and
                   the greedy script's cost, e.g. the constrained
                   distance). *)
                Accept lb
              else if ub <= tau then
                (* The pair is certainly a result (TED <= ub <= τ), but
                   the exact distance is still needed: run the kernel
                   with the band shrunk to ub - 1.  The banded kernel
                   returns min(TED, band + 1) = min(TED, ub) = TED. *)
                Verify { band = ub - 1 }
              else Verify { band = tau }
            end
          end
        end
      end
    end
end

(* --- per-pair convenience entry points ---

   These compile both trees on every call; they exist for tests, ad-hoc
   exploration and the baselines' one-shot filters.

   @deprecated for join inner loops — compile each tree once with
   {!Compiled.of_tree} during preprocessing and use the pairwise
   functions above instead. *)

let size t1 t2 = abs (Tree.size t1 - Tree.size t2)

let compiled_pair f t1 t2 = f (Compiled.of_tree t1) (Compiled.of_tree t2)

let label_histogram t1 t2 = compiled_pair Compiled.label_bound t1 t2

let degree_histogram t1 t2 = compiled_pair Compiled.degree_bound t1 t2

let preorder_string t1 t2 =
  String_edit.distance (Traversal.preorder_labels t1) (Traversal.preorder_labels t2)

let postorder_string t1 t2 =
  String_edit.distance (Traversal.postorder_labels t1) (Traversal.postorder_labels t2)

let traversal t1 t2 = compiled_pair Compiled.traversal_bound t1 t2

let euler_string t1 t2 = compiled_pair Compiled.euler_bound t1 t2

(* Compiles each tree once and evaluates all bounds on the shared
   compiled forms (the seed version recomputed the traversals and bags
   once per bound). *)
let best t1 t2 = compiled_pair Compiled.best t1 t2

let upper t1 t2 = compiled_pair Compiled.upper t1 t2
