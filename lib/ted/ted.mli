(** Exact tree edit distance — the verifier shared by all join methods.

    The paper verifies candidates with RTED (Pawlik & Augsten), whose key
    idea is to pick a decomposition strategy based on the shapes of the two
    trees.  This module implements that idea as a hybrid over the
    Zhang–Shasha left-path decomposition and its mirror image (the
    right-path decomposition): for every tree pair it estimates the number
    of relevant subproblems of both and runs the cheaper one.  Both
    variants compute the exact distance, so the choice only affects
    runtime.  (See DESIGN.md, substitution 1.) *)

type algorithm =
  | Zs_left   (** Zhang–Shasha on the trees as given *)
  | Zs_right  (** Zhang–Shasha on the mirrored trees *)
  | Hybrid    (** per-pair choice by estimated subproblem count *)
  | Naive     (** memoized forest recursion; testing only, small trees *)

type prep
(** Per-tree preprocessing (postorder arrays for both decompositions).
    Joins preprocess every tree once and verify pairs with
    {!distance_prep}. *)

val preprocess : ?dag:Tsj_tree.Dag.t -> Tsj_tree.Tree.t -> prep
(** With [dag], equivalent to [preprocess_consed (cons dag tree)] —
    only safe where {!cons} is (single-domain interning). *)

type consed
(** A tree (and its mirror) interned into a {!Tsj_tree.Dag} store:
    the sequential half of consed preprocessing. *)

val cons : Tsj_tree.Dag.t -> Tsj_tree.Tree.t -> consed
(** Interning mutates the store — call from one domain at a time (joins
    cons every tree up front, before fanning out). *)

val consed_tree : consed -> Tsj_tree.Tree.t
(** The shared structural view of the interned tree: structurally equal
    trees consed into one store are physically equal ([==]). *)

val preprocess_consed : consed -> prep
(** Pure (no store mutation), so safe to run in parallel across trees.
    The resulting prep carries DAG ids in its postorders, enabling the
    equal-subtree fast path and the cross-pair memo cache in the
    kernels, and its {!tree} is the shared view of {!consed_tree}. *)

val tree : prep -> Tsj_tree.Tree.t

val size : prep -> int

val distance : ?algorithm:algorithm -> Tsj_tree.Tree.t -> Tsj_tree.Tree.t -> int

val distance_prep : ?algorithm:algorithm -> prep -> prep -> int

val bounded_distance_prep : ?algorithm:algorithm -> prep -> prep -> int -> int
(** [bounded_distance_prep p1 p2 k] is [min (TED, k + 1)] through the
    τ-banded DP (see {!Zhang_shasha.bounded_distance_postorder}) under the
    chosen decomposition; the {!Naive} algorithm computes fully and
    clamps.  @raise Invalid_argument if [k < 0]. *)

val within : ?algorithm:algorithm -> prep -> prep -> int -> bool
(** [within p1 p2 tau]: is [TED <= tau]?  Uses the banded verifier. *)
