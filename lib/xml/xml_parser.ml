(* Parse errors carry the byte offset of the offending character; the
   public entry points format it as a 1-based line/column. *)
exception Error of int * string

type cursor = { input : string; mutable pos : int }

let fail cur msg = raise (Error (cur.pos, msg))

let describe input pos msg =
  Printf.sprintf "%s: %s" (Tsj_util.Text.describe_pos input pos) msg

let eof cur = cur.pos >= String.length cur.input

let peek cur = if eof cur then '\000' else cur.input.[cur.pos]

let peek2 cur =
  if cur.pos + 1 >= String.length cur.input then '\000' else cur.input.[cur.pos + 1]

let advance cur = cur.pos <- cur.pos + 1

let looking_at cur s =
  let n = String.length s in
  cur.pos + n <= String.length cur.input && String.sub cur.input cur.pos n = s

let expect cur s =
  if looking_at cur s then cur.pos <- cur.pos + String.length s
  else fail cur (Printf.sprintf "expected %S" s)

let skip_until cur s =
  let n = String.length cur.input in
  let rec go () =
    if cur.pos >= n then fail cur (Printf.sprintf "unterminated construct, expected %S" s)
    else if looking_at cur s then cur.pos <- cur.pos + String.length s
    else begin
      advance cur;
      go ()
    end
  in
  go ()

let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_ws cur = while (not (eof cur)) && is_ws (peek cur) do advance cur done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name cur =
  if not (is_name_start (peek cur)) then fail cur "expected a name";
  let start = cur.pos in
  while (not (eof cur)) && is_name_char (peek cur) do advance cur done;
  String.sub cur.input start (cur.pos - start)

(* Decode one entity/char reference starting after '&'. *)
let parse_reference cur b =
  let semi =
    match String.index_from_opt cur.input cur.pos ';' with
    | Some i when i - cur.pos <= 10 -> i
    | _ -> fail cur "unterminated entity reference"
  in
  let body = String.sub cur.input cur.pos (semi - cur.pos) in
  cur.pos <- semi + 1;
  match body with
  | "lt" -> Buffer.add_char b '<'
  | "gt" -> Buffer.add_char b '>'
  | "amp" -> Buffer.add_char b '&'
  | "quot" -> Buffer.add_char b '"'
  | "apos" -> Buffer.add_char b '\''
  | _ ->
    if String.length body > 1 && body.[0] = '#' then begin
      let code =
        try
          if body.[1] = 'x' || body.[1] = 'X' then
            int_of_string ("0x" ^ String.sub body 2 (String.length body - 2))
          else int_of_string (String.sub body 1 (String.length body - 1))
        with Failure _ -> fail cur (Printf.sprintf "bad character reference &%s;" body)
      in
      if code < 0x80 then Buffer.add_char b (Char.chr code)
      else begin
        (* UTF-8 encode *)
        if code < 0x800 then begin
          Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
        else if code < 0x10000 then begin
          Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
      end
    end
    else fail cur (Printf.sprintf "unknown entity &%s;" body)

let parse_attr_value cur =
  let quote = peek cur in
  if quote <> '"' && quote <> '\'' then fail cur "expected a quoted attribute value";
  advance cur;
  let b = Buffer.create 16 in
  let rec go () =
    if eof cur then fail cur "unterminated attribute value"
    else begin
      let c = peek cur in
      if c = quote then advance cur
      else if c = '&' then begin
        advance cur;
        parse_reference cur b;
        go ()
      end
      else if c = '<' then fail cur "'<' in attribute value"
      else begin
        Buffer.add_char b c;
        advance cur;
        go ()
      end
    end
  in
  go ();
  Buffer.contents b

let parse_attrs cur =
  let rec go acc =
    skip_ws cur;
    if is_name_start (peek cur) then begin
      let name = parse_name cur in
      skip_ws cur;
      expect cur "=";
      skip_ws cur;
      let value = parse_attr_value cur in
      go ((name, value) :: acc)
    end
    else List.rev acc
  in
  go []

(* Skip comments, PIs and the XML declaration; return true if something was
   consumed. *)
let skip_misc cur =
  if looking_at cur "<!--" then begin
    cur.pos <- cur.pos + 4;
    skip_until cur "-->";
    true
  end
  else if looking_at cur "<?" then begin
    cur.pos <- cur.pos + 2;
    skip_until cur "?>";
    true
  end
  else if looking_at cur "<!DOCTYPE" then begin
    (* naive DOCTYPE skip: up to the next '>' (no internal subsets) *)
    skip_until cur ">";
    true
  end
  else false

let rec parse_element cur =
  expect cur "<";
  let tag = parse_name cur in
  let attrs = parse_attrs cur in
  skip_ws cur;
  if looking_at cur "/>" then begin
    cur.pos <- cur.pos + 2;
    Xml.Element { tag; attrs; children = [] }
  end
  else begin
    expect cur ">";
    let children = parse_content cur tag in
    Xml.Element { tag; attrs; children }
  end

and parse_content cur tag =
  let children = ref [] in
  let text = Buffer.create 32 in
  let flush_text () =
    if Buffer.length text > 0 then begin
      children := Xml.Text (Buffer.contents text) :: !children;
      Buffer.clear text
    end
  in
  let rec go () =
    if eof cur then fail cur (Printf.sprintf "unterminated element <%s>" tag)
    else if looking_at cur "</" then begin
      flush_text ();
      cur.pos <- cur.pos + 2;
      let close = parse_name cur in
      skip_ws cur;
      expect cur ">";
      if close <> tag then
        fail cur (Printf.sprintf "mismatched closing tag </%s> for <%s>" close tag)
    end
    else if looking_at cur "<![CDATA[" then begin
      cur.pos <- cur.pos + 9;
      let start = cur.pos in
      skip_until cur "]]>";
      Buffer.add_string text (String.sub cur.input start (cur.pos - 3 - start));
      go ()
    end
    else if skip_misc cur then go ()
    else if peek cur = '<' && peek2 cur = '/' then go () (* unreachable; kept for clarity *)
    else if peek cur = '<' then begin
      flush_text ();
      children := parse_element cur :: !children;
      go ()
    end
    else if peek cur = '&' then begin
      advance cur;
      parse_reference cur text;
      go ()
    end
    else begin
      Buffer.add_char text (peek cur);
      advance cur;
      go ()
    end
  in
  go ();
  List.rev !children

let parse_prolog cur =
  let rec go () =
    skip_ws cur;
    if skip_misc cur then go ()
  in
  go ()

let parse s =
  let cur = { input = s; pos = 0 } in
  match
    parse_prolog cur;
    let doc = parse_element cur in
    parse_prolog cur;
    if not (eof cur) then fail cur "trailing content after the root element";
    doc
  with
  | doc -> Ok doc
  | exception Error (pos, msg) -> Error (describe s pos msg)

let parse_exn s =
  match parse s with
  | Ok doc -> doc
  | Error msg -> invalid_arg ("Xml_parser.parse_exn: " ^ msg)

let parse_fragments s =
  let cur = { input = s; pos = 0 } in
  match
    let acc = ref [] in
    let rec go () =
      parse_prolog cur;
      if not (eof cur) then begin
        acc := parse_element cur :: !acc;
        go ()
      end
    in
    go ();
    List.rev !acc
  with
  | docs -> Ok docs
  | exception Error (pos, msg) -> Error (describe s pos msg)

(* Lenient fragment stream: on a malformed element, report its 1-based
   line/column and resynchronize at the next '<' at or past the error
   position.  Progress is guaranteed: an element fails at its own start
   only when that character is not '<', so the found '<' always lies
   strictly past where the element began. *)
let parse_fragments_lenient s =
  let cur = { input = s; pos = 0 } in
  let docs = ref [] in
  let errors = ref [] in
  let resync from =
    let next =
      match String.index_from_opt s (min from (String.length s)) '<' with
      | Some i -> i
      | None -> String.length s
    in
    cur.pos <- next
  in
  let rec go () =
    (match parse_prolog cur with
    | () -> ()
    | exception Error (pos, _) ->
      (* An unterminated comment/PI/DOCTYPE swallows the rest of the
         input; treat the remainder as unusable but keep what we have. *)
      let line, col = Tsj_util.Text.line_col s pos in
      errors := (line, col, "unterminated prolog construct") :: !errors;
      cur.pos <- String.length s);
    if not (eof cur) then begin
      (match parse_element cur with
      | doc -> docs := doc :: !docs
      | exception Error (pos, msg) ->
        let line, col = Tsj_util.Text.line_col s pos in
        errors := (line, col, msg) :: !errors;
        resync pos);
      go ()
    end
  in
  go ();
  (List.rev !docs, List.rev !errors)

let load_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> parse contents
  | exception Sys_error msg -> Error msg
