(** Recursive-descent parser for the XML subset described in {!Xml}.

    Handles: the XML declaration and processing instructions (skipped),
    comments (skipped), CDATA sections (as text), the five predefined
    entities ([&lt; &gt; &amp; &quot; &apos;]) and decimal/hex character
    references, attributes in single or double quotes, and self-closing
    tags.  Tag mismatches, unterminated constructs and stray markup are
    reported with the 1-based line and column of the offending
    character. *)

val parse : string -> (Xml.t, string) result
(** Parse a document with exactly one root element.  Leading/trailing
    prolog material (declaration, comments, whitespace) is allowed. *)

val parse_exn : string -> Xml.t
(** @raise Invalid_argument on malformed input. *)

val parse_fragments : string -> (Xml.t list, string) result
(** Parse a sequence of root-level elements — handy for record-per-line
    corpora (e.g. a concatenation of Swissprot entries).  Fails on the
    first malformed element, with its line/column. *)

val parse_fragments_lenient : string -> Xml.t list * (int * int * string) list
(** Best-effort fragment stream for dirty corpora: a malformed element is
    skipped and reported as [(line, column, message)] (1-based) instead of
    failing the whole load; the parser resynchronizes at the next ['<']
    past the error.  The error list is in input order. *)

val load_file : string -> (Xml.t, string) result
