(** The join methods of the paper's evaluation, behind one dispatch type.

    STR, SET and PRT are the three methods compared throughout Section 4;
    NL is the unfiltered ground truth; the PRT variants drive the ablation
    experiments (random partitioning, and the paper's literal postorder
    windows vs. our sound two-sided default — see {!Tsj_core.Two_layer_index}). *)

type t =
  | Nl          (** nested loop + size filter (ground truth) *)
  | Str         (** traversal-string filter (Guha et al.) *)
  | Set         (** binary-branch filter (Yang et al.) *)
  | Prt         (** PartSJ, balanced partitioning, sound index *)
  | Prt_random  (** PartSJ with random bridging edges (ablation) *)
  | Prt_paper_index (** PartSJ with the paper's rank windows (ablation;
                        may miss results) *)

val name : t -> string

val of_name : string -> t option
(** Case-insensitive; accepts the paper's names ("STR", "SET", "PRT") and
    the ablation suffixes ("PRT-random", "PRT-paper"). *)

val all : t list

val paper_methods : t list
(** [STR; SET; PRT] — the three lines of every figure. *)

val supports_resilience : t -> bool
(** Whether {!run}'s [budget]/[checkpoint] options have any effect:
    [true] for the PartSJ variants, [false] for the baselines. *)

val run :
  ?domains:int ->
  ?budget:Tsj_join.Budget.t ->
  ?checkpoint:Tsj_join.Checkpoint.config ->
  ?consing:bool ->
  t ->
  trees:Tsj_tree.Tree.t array ->
  tau:int ->
  Tsj_join.Types.output
(** [domains] (default 1) is forwarded to the PartSJ variants, which run
    their whole pipeline on that many OCaml domains; the baselines are
    sequential and ignore it.  [budget] and [checkpoint] enable the
    resilient execution of {!Tsj_core.Partsj} and are likewise
    PartSJ-only (see {!supports_resilience}), as is [consing] (default
    on: hash-consed preps + cross-pair TED memo). *)
