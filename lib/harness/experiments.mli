(** Runners that regenerate every table and figure of the paper's
    evaluation (Section 4), printing the same rows/series in plain-text
    tables.  See DESIGN.md for the per-experiment index and EXPERIMENTS.md
    for recorded paper-vs-measured outcomes.

    Cardinalities default to laptop-scale stand-ins for the paper's
    corpora (the paper runs up to 100K trees on C++ for hours); the
    [scale] knob multiplies them.  All runs are deterministic in
    [seed]. *)

type config = {
  scale : float;       (** multiplies every dataset cardinality *)
  seed : int;
  taus : int list;     (** thresholds for the τ sweeps (paper: 1..5) *)
  out : out_channel;
  domains : int;       (** domain count forwarded to the PartSJ runs *)
  bench_json : string; (** output path of {!perf}'s machine-readable record *)
}

val default_config : config
(** [scale = 1.0], [seed = 42], [taus = 1..5], stdout, [domains = 1],
    [bench_json = "BENCH_partsj.json"]. *)

val fig10_11 : config -> unit
(** Figures 10 and 11: runtime split (candidate generation vs TED) and
    candidate counts (STR / SET / PRT / REL) vs τ, on all four datasets. *)

val fig12_13 : config -> unit
(** Figures 12 and 13: the same two metrics vs dataset cardinality at
    τ = 3. *)

val fig14 : config -> unit
(** Table 1 + Figure 14: sensitivity to maximum fanout, maximum depth,
    number of labels and average tree size on the synthetic generator,
    τ = 3. *)

val ablation : config -> unit
(** Section 4.3's closing experiment (balanced vs random partitioning)
    plus our index ablations: the paper's rank windows (with missed
    results counted against ground truth) and the label-only index. *)

val parallel : config -> unit
(** Extension bench: the whole PartSJ join (preprocessing, block-parallel
    candidate generation and pipelined verification) on 1, 2, 4 and the
    recommended number of OCaml domains. *)

val perf : config -> unit
(** End-to-end phase benchmark on the fig10-style synthetic dataset at
    τ = 3: runs the join at one domain and at the recommended count,
    prints the wall-time phase split, asserts that result pairs,
    candidate counts and probe statistics are identical across domain
    counts, and writes the machine-readable record to
    [config.bench_json].
    @raise Failure if the two runs disagree. *)

val dag : config -> unit
(** DAG-compression benchmark on the subtree-repetition-heavy
    [redundant] profile at τ = 3: measures the resident-set reduction of
    hash-consing the collection (deep-copied baseline vs interned shared
    views), runs the PartSJ join with consing off/on at 1 and
    [config.domains] domains, reports the verify-time change and the
    cross-pair memo hit rate, and writes [BENCH_dag.json].
    @raise Failure if consing changes the join output, the output
    differs across domain counts, the memo never hits, or (at
    [scale >= 1.0]) interning saves less than 2x memory. *)

val streaming : config -> unit
(** Extension bench: cumulative throughput of the incremental
    (streaming) join as the history grows. *)

val resilience : config -> unit
(** Extension bench: the resilient-execution scenarios.  Runs a
    kill-and-resume (injected crash between blocks, checkpoint journal
    every block) at one domain and at the configured parallel count,
    asserting the resumed output bit-identical to an uninterrupted run;
    then a tiny per-pair budget, asserting no false positives and
    completeness up to the quarantined set.
    @raise Failure on any violation. *)

val serving : config -> unit
(** Extension bench: the fault-tolerant similarity-search service.
    Runs an in-process [tsj serve] instance over a temp Unix socket in
    three phases: a lock-step newline-protocol burst (the "before"
    measurement), a pipelined binary-protocol mixed read/write phase in
    a dedicated load-generator domain (the headline throughput and
    latency percentiles), and a pure ADD burst measuring the group-commit
    amortization (fsyncs per acked ADD).  Asserts every request is
    answered; then drains over the wire and asserts the cold start sees
    the full index with an empty journal; then runs a kill-and-restart
    crash scenario asserting bit-identical answers.  Writes
    [BENCH_serving.json] with both the before (text) and after (binary)
    numbers.
    @raise Failure on any violation. *)

val serving_soak : config -> unit
(** Extension bench: sustained serving load.  One server, four rungs of
    fixed connection counts (1, 2, 4, 8), each holding a pipelined mixed
    read/write workload (1/128 ADDs) for 15 s — 60 s of load at full
    scale ([scale] shrinks the rungs for smoke runs).  Prints
    throughput, p50/p99 and fsyncs-per-ADD per rung and writes
    [BENCH_serving_soak.json].  Not part of {!run_all} (it is a
    minute-long bench by design); run it via [tsj bench serving-soak].
    @raise Failure on any violation. *)

val overload : config -> unit
(** Extension bench: overload robustness.  Runs {!Tsj_harness.Faults}'
    overload storm at widening greedy-client counts (1, 2, 5, 10 —
    a single rung below [scale = 0.1]): one token-bucket-limited server,
    a conforming paced client measured before and inside each storm,
    greedy pipelined clients firing 50 ms-deadline queries flat out, an
    idle connection awaiting the reaper and a hedge-race pair.  Prints
    baseline-vs-storm goodput, shed/expired/reaped counts per rung and
    writes [BENCH_overload.json].
    @raise Failure if goodput drops below half of baseline, the
    conforming client starves or is shed, any answer is late, wrong or
    hedge-divergent, or an expired ADD reaches the store. *)

val replication : config -> unit
(** Extension bench: the replicated service.  Starts a
    primary-plus-two-replica cluster over temp Unix sockets (quorum 2,
    journal streaming), drives quorum-acked ADDs through the failover
    client, then [abort]s the primary (kill -9 semantics), promotes a
    replica over the wire and measures the failover latency (abort to
    first acknowledged ADD) and post-failover throughput; asserts both
    survivors answer bit-identically to a single-node store that never
    failed.  Finishes with the in-process
    {!Faults.run_failover_storm} (randomized kills and partitions),
    asserting zero acknowledged ADDs lost and one writer per epoch.
    Writes [BENCH_replication.json].
    @raise Failure on any violation. *)

val sharding : config -> unit
(** Extension bench: the sharded service.  Starts 8 single-node shard
    servers over temp Unix sockets and a real {!Tsj_server.Router} with
    a checksummed ledger, loads the dataset through the router (dense
    gids), and measures: band-window fan-out (average shards touched
    per query — at most 2 with the default band width), the scanned
    fraction versus one unsharded store (the sub-linear per-shard query
    cost), and wire-level query latency, asserting every QUERY/KNN
    answer bit-identical to an unsharded reference.  Then migrates the
    fullest shard to a fresh node by journal streaming and re-checks
    bit-identity; kills another shard outright and checks every
    degraded answer is sound (no hit lost outside its [lo, hi] sandwich,
    none invented); finishes with the in-process
    {!Faults.run_sharded_storm} (randomized kills, partitions,
    sabotaged migrations and router crashes).  Writes
    [BENCH_sharding.json].
    @raise Failure on any violation. *)

val integrity : config -> unit
(** Extension bench: end-to-end integrity.  Measures the background
    scrubber's cost under load — the soak workload (pipelined binary
    queries over 4 connections) against the same preloaded server with
    the scrubber off and then re-verifying the journal on 10 ms ticks,
    asserting (at [scale >= 1.0]) the throughput overhead stays below
    5%% — and the wall time of one full offline scrub pass (every
    record, the epoch header, both seals).  Finishes with the
    in-process {!Faults.run_scrub_storm} (random bit flips in live
    journal/snapshot/seal files, mid-journal rot before restarts,
    grafted divergent histories, injected read faults), asserting every
    injected corruption detected, zero wrong answers, convergence after
    repair, and that Merkle anti-entropy transferred exactly the
    differing ranges (≪ full re-sync cost).  Writes
    [BENCH_integrity.json].
    @raise Failure on any violation. *)

val run_all : config -> unit
(** Everything above, in paper order, extensions last. *)
