module Types = Tsj_join.Types
module Profiles = Tsj_datagen.Profiles
module Generator = Tsj_datagen.Generator

type config = {
  scale : float;
  seed : int;
  taus : int list;
  out : out_channel;
  domains : int;  (** domain count for the PartSJ runs (1 = sequential) *)
  bench_json : string;  (** where {!perf} writes its machine-readable record *)
}

let default_config =
  {
    scale = 1.0;
    seed = 42;
    taus = [ 1; 2; 3; 4; 5 ];
    out = stdout;
    domains = 1;
    bench_json = "BENCH_partsj.json";
  }

(* Laptop-scale default cardinalities per dataset (paper: 100K / 50K /
   10K / 10K). *)
let base_cardinality (p : Profiles.t) =
  match p.Profiles.name with
  | "swissprot" -> 1200
  | "treebank" -> 1200
  | "sentiment" -> 800
  | _ -> 800

let cardinality config profile =
  max 10 (int_of_float (float_of_int (base_cardinality profile) *. config.scale))

let printf config fmt = Printf.fprintf config.out fmt

let dataset config profile n =
  let trees = Profiles.instantiate profile ~seed:config.seed ~n in
  printf config "  [%s: %s]\n%!" profile.Profiles.name (Profiles.describe trees);
  trees

(* One instrumented run; rows feed both the runtime and candidate tables. *)
type row = { method_ : Methods.t; label : string; output : Types.output }

let run_method config ~trees ~tau ~label method_ =
  let output = Methods.run ~domains:config.domains method_ ~trees ~tau in
  printf config "    %s tau=%d %s: %s\n%!" (Methods.name method_) tau label
    (Format.asprintf "%a" Types.pp_stats output.Types.stats);
  { method_; label; output }

let runtime_table config ~key rows =
  Table.print ~out:config.out
    ~header:[ key; "method"; "cand-gen"; "TED verify"; "total"; "candidates"; "results" ]
    ~align:[ Table.Left; Left; Right; Right; Right; Right; Right ]
    (List.map
       (fun r ->
         let s = r.output.Types.stats in
         [
           r.label;
           Methods.name r.method_;
           Table.seconds s.Types.candidate_time_s;
           Table.seconds s.Types.verify_time_s;
           Table.seconds (Types.total_time_s s);
           Table.count s.Types.n_candidates;
           Table.count s.Types.n_results;
         ])
       rows)

let candidate_table config ~key rows =
  (* Figures 11/13: one row per x-value, one column per method, plus REL. *)
  (* Preserve first-occurrence order: numeric labels sort wrongly as
     strings ("n=1200" < "n=240"). *)
  let dedupe xs =
    List.rev
      (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)
  in
  let labels = dedupe (List.map (fun r -> r.label) rows) in
  let methods = dedupe (List.map (fun r -> r.method_) rows) in
  let find label m =
    List.find_opt (fun r -> r.label = label && r.method_ = m) rows
  in
  let header = key :: List.map Methods.name methods @ [ "REL" ] in
  let data =
    List.map
      (fun label ->
        let cells =
          List.map
            (fun m ->
              match find label m with
              | Some r -> Table.count r.output.Types.stats.Types.n_candidates
              | None -> "-")
            methods
        in
        let rel =
          match List.find_opt (fun r -> r.label = label) rows with
          | Some r -> Table.count r.output.Types.stats.Types.n_results
          | None -> "-"
        in
        (label :: cells) @ [ rel ])
      labels
  in
  Table.print ~out:config.out ~header
    ~align:(Table.Left :: List.map (fun _ -> Table.Right) (List.tl header))
    data

(* --- Figures 10 & 11: vary tau on the four datasets --- *)

let fig10_11 config =
  Table.heading ~out:config.out
    "Figures 10 & 11 — runtime split and candidate counts vs TED threshold";
  List.iter
    (fun profile ->
      let n = cardinality config profile in
      printf config "\n-- dataset %s (n = %d) --\n" profile.Profiles.name n;
      let trees = dataset config profile n in
      let rows =
        List.concat_map
          (fun tau ->
            List.map
              (fun m ->
                run_method config ~trees ~tau ~label:(Printf.sprintf "tau=%d" tau) m)
              Methods.paper_methods)
          config.taus
      in
      printf config "\n  Figure 10 (%s): runtime\n" profile.Profiles.name;
      runtime_table config ~key:"tau" rows;
      printf config "\n  Figure 11 (%s): candidates\n" profile.Profiles.name;
      candidate_table config ~key:"tau" rows)
    Profiles.all

(* --- Figures 12 & 13: vary cardinality at tau = 3 --- *)

let fig12_13 config =
  Table.heading ~out:config.out
    "Figures 12 & 13 — runtime split and candidate counts vs dataset cardinality (tau=3)";
  let tau = 3 in
  List.iter
    (fun profile ->
      let full = cardinality config profile in
      let steps = List.map (fun f -> max 10 (full * f / 5)) [ 1; 2; 3; 4; 5 ] in
      printf config "\n-- dataset %s (n = %s) --\n" profile.Profiles.name
        (String.concat ", " (List.map string_of_int steps));
      let all_trees = dataset config profile full in
      let rows =
        List.concat_map
          (fun n ->
            let trees = Array.sub all_trees 0 n in
            List.map
              (fun m ->
                run_method config ~trees ~tau ~label:(Printf.sprintf "n=%d" n) m)
              Methods.paper_methods)
          steps
      in
      printf config "\n  Figure 12 (%s): runtime\n" profile.Profiles.name;
      runtime_table config ~key:"cardinality" rows;
      printf config "\n  Figure 13 (%s): candidates\n" profile.Profiles.name;
      candidate_table config ~key:"cardinality" rows)
    Profiles.all

(* --- Table 1 + Figure 14: sensitivity to the generator parameters --- *)

let fig14 config =
  Table.heading ~out:config.out
    "Table 1 + Figure 14 — sensitivity to tree parameters (synthetic, tau=3)";
  let tau = 3 in
  let n = max 10 (int_of_float (600.0 *. config.scale)) in
  let base = Profiles.synthetic in
  let sweeps =
    [
      ( "maximum fanout f",
        List.map
          (fun f -> (Printf.sprintf "f=%d" f, { base.Profiles.params with Generator.max_fanout = f }))
          [ 2; 3; 4; 5; 6 ] );
      ( "maximum depth d",
        List.map
          (fun d -> (Printf.sprintf "d=%d" d, { base.Profiles.params with Generator.max_depth = d }))
          [ 4; 5; 6; 7; 8 ] );
      ( "number of labels l",
        List.map
          (fun l -> (Printf.sprintf "l=%d" l, { base.Profiles.params with Generator.n_labels = l }))
          [ 3; 5; 10; 20; 50 ] );
      ( "average tree size t",
        List.map
          (fun t ->
            (* Table 1 combines t up to 200 with f = 3, d = 5, which no
               tree can satisfy (capacity(3,5) = 121): raise the depth cap
               just enough for the size target, as the printed dataset
               stats make visible. *)
            let rec fit d =
              if Generator.capacity ~max_fanout:3 ~max_depth:d >= t + (t / 4) then d
              else fit (d + 1)
            in
            ( Printf.sprintf "t=%d" t,
              {
                base.Profiles.params with
                Generator.avg_size = t;
                max_depth = max base.Profiles.params.Generator.max_depth (fit 1);
              } ))
          [ 40; 80; 120; 160; 200 ] );
    ]
  in
  List.iter
    (fun (title, variants) ->
      printf config "\n-- varying %s (n = %d) --\n" title n;
      let rows =
        List.concat_map
          (fun (label, params) ->
            let profile = Profiles.with_params base params in
            let trees = Profiles.instantiate profile ~seed:config.seed ~n in
            printf config "  [%s: %s]\n%!" label (Profiles.describe trees);
            List.map (fun m -> run_method config ~trees ~tau ~label m)
              Methods.paper_methods)
          variants
      in
      printf config "\n  Figure 14 (%s): runtime\n" title;
      runtime_table config ~key:"value" rows;
      printf config "\n  Figure 14 (%s): candidates\n" title;
      candidate_table config ~key:"value" rows)
    sweeps

(* --- Ablations --- *)

let ablation config =
  Table.heading ~out:config.out
    "Ablations — partitioning scheme and index variants (Section 4.3 note)";
  List.iter
    (fun profile ->
      let n = max 10 (cardinality config profile * 3 / 4) in
      printf config "\n-- dataset %s (n = %d) --\n" profile.Profiles.name n;
      let trees = dataset config profile n in
      let rows =
        List.concat_map
          (fun tau ->
            let label = Printf.sprintf "tau=%d" tau in
            let balanced = run_method config ~trees ~tau ~label Methods.Prt in
            let random = run_method config ~trees ~tau ~label Methods.Prt_random in
            let paper_idx = run_method config ~trees ~tau ~label Methods.Prt_paper_index in
            let label_only =
              let output =
                Tsj_core.Partsj.join ~index_mode:Tsj_core.Two_layer_index.Label_only
                  ~trees ~tau ()
              in
              { method_ = Methods.Prt; label = label ^ " (label-only)"; output }
            in
            let exact_verify =
              let output = Tsj_core.Partsj.join ~bounded_verify:false ~trees ~tau () in
              { method_ = Methods.Prt; label = label ^ " (exact-verify)"; output }
            in
            let missed =
              balanced.output.Types.stats.Types.n_results
              - paper_idx.output.Types.stats.Types.n_results
            in
            printf config
              "    paper rank windows at tau=%d: %d result pair(s) missed vs sound index\n"
              tau missed;
            [ balanced; random; paper_idx; label_only; exact_verify ])
          [ 1; 2; 3; 4; 5 ]
      in
      printf config "\n  Ablation (%s): runtime and candidates\n" profile.Profiles.name;
      Table.print ~out:config.out
        ~header:[ "variant"; "method"; "cand-gen"; "TED verify"; "total"; "candidates"; "results" ]
        ~align:[ Table.Left; Left; Right; Right; Right; Right; Right ]
        (List.map
           (fun r ->
             let s = r.output.Types.stats in
             [
               r.label;
               Methods.name r.method_;
               Table.seconds s.Types.candidate_time_s;
               Table.seconds s.Types.verify_time_s;
               Table.seconds (Types.total_time_s s);
               Table.count s.Types.n_candidates;
               Table.count s.Types.n_results;
             ])
           rows))
    [ Profiles.synthetic; Profiles.sentiment ]

(* --- extensions: multicore verification and streaming throughput --- *)

let parallel config =
  Table.heading ~out:config.out
    "Extension — block-parallel PartSJ (paper future work: multi-core)";
  let profile = Profiles.synthetic in
  let n = cardinality config profile in
  let trees = dataset config profile n in
  let tau = 3 in
  let rec_domains = Tsj_join.Parallel.recommended_domains () in
  let domain_counts = List.sort_uniq compare [ 1; 2; 4; rec_domains ] in
  let rows =
    List.filter_map
      (fun domains ->
        if domains > rec_domains && domains > 2 then None
        else begin
          let output, dt =
            Tsj_util.Timer.wall (fun () ->
                Tsj_core.Partsj.join ~domains ~trees ~tau ())
          in
          let s = output.Types.stats in
          Some
            [
              string_of_int domains;
              Table.seconds s.Types.candidate_time_s;
              Table.seconds s.Types.verify_time_s;
              Table.seconds dt;
              Table.count s.Types.n_results;
            ]
        end)
      domain_counts
  in
  printf config "\n  (tau = %d, %d trees, recommended domains = %d;\n" tau n rec_domains;
  printf config
    "   cand-gen / verify are attributed task times, which overlap in wall time)\n";
  Table.print ~out:config.out
    ~header:[ "domains"; "cand-gen"; "TED verify"; "total (wall)"; "results" ]
    ~align:[ Table.Right; Right; Right; Right; Right ]
    rows

(* --- end-to-end phase benchmark + machine-readable record --- *)

let perf config =
  Table.heading ~out:config.out
    "PartSJ end-to-end phase benchmark (fig10-style synthetic, tau = 3)";
  let profile = Profiles.synthetic in
  let n = cardinality config profile in
  let trees = dataset config profile n in
  let tau = 3 in
  let rec_domains = Tsj_join.Parallel.recommended_domains () in
  let domains = if config.domains > 1 then config.domains else rec_domains in
  let run ~cascade d =
    let phases = ref None in
    let (output, pstats), wall =
      Tsj_util.Timer.wall (fun () ->
          Tsj_core.Partsj.join_with_probe_stats ~domains:d ~cascade
            ~on_phases:(fun p -> phases := Some p)
            ~trees ~tau ())
    in
    (output, pstats, Option.get !phases, wall)
  in
  (* Before/after in one invocation: [cascade:false] is the seed verifier
     (banded preorder-SED prefilter + τ-banded kernel), the other two runs
     exercise the full filter cascade at one and [domains] domains. *)
  let ob, pb, phb, wb = run ~cascade:false 1 in
  let o1, p1, ph1, w1 = run ~cascade:true 1 in
  let oN, pN, phN, wN = run ~cascade:true domains in
  let consistent (o : Types.output) =
    let s = o.Types.stats in
    Types.cascade_total s.Types.cascade = s.Types.n_candidates
  in
  let identical =
    Types.equal_results o1 oN
    && o1.Types.stats.Types.n_candidates = oN.Types.stats.Types.n_candidates
    (* equal_cascade: the memo hit/miss split is scheduling-dependent *)
    && Types.equal_cascade o1.Types.stats.Types.cascade oN.Types.stats.Types.cascade
    && p1 = pN
  in
  let lossless =
    Types.equal_results ob o1
    && ob.Types.stats.Types.n_candidates = o1.Types.stats.Types.n_candidates
    && pb = p1
  in
  let row label (o : Types.output) (ph : Tsj_core.Partsj.phase_times) wall =
    let s = o.Types.stats in
    [
      label;
      Table.seconds ph.Tsj_core.Partsj.prep_wall_s;
      Table.seconds ph.Tsj_core.Partsj.sweep_wall_s;
      Table.seconds s.Types.verify_time_s;
      Table.seconds wall;
      Table.count s.Types.n_candidates;
      Table.count s.Types.n_results;
    ]
  in
  printf config "\n  (n = %d, recommended domains = %d)\n" n rec_domains;
  Table.print ~out:config.out
    ~header:
      [ "run"; "prep (wall)"; "sweep (wall)"; "verify (attr)"; "total (wall)";
        "candidates"; "results" ]
    ~align:[ Table.Left; Right; Right; Right; Right; Right; Right ]
    [
      row "cascade off, 1 dom" ob phb wb;
      row "cascade on, 1 dom" o1 ph1 w1;
      row (Printf.sprintf "cascade on, %d dom" domains) oN phN wN;
    ];
  let cascade_row label (o : Types.output) =
    let c = o.Types.stats.Types.cascade in
    [
      label;
      Table.count c.Types.pruned_size;
      Table.count c.Types.pruned_labels;
      Table.count c.Types.pruned_degrees;
      Table.count c.Types.pruned_sed;
      Table.count c.Types.early_accepted;
      Table.count c.Types.kernel_verified;
    ]
  in
  printf config "\n  Per-stage cascade decisions (partition the candidate set):\n";
  Table.print ~out:config.out
    ~header:[ "run"; "size"; "labels"; "degrees"; "sed"; "early"; "kernel" ]
    ~align:[ Table.Left; Right; Right; Right; Right; Right; Right ]
    [
      cascade_row "cascade off, 1 dom" ob;
      cascade_row "cascade on, 1 dom" o1;
      cascade_row (Printf.sprintf "cascade on, %d dom" domains) oN;
    ];
  let verify_speedup =
    ob.Types.stats.Types.verify_time_s /. o1.Types.stats.Types.verify_time_s
  in
  (* Measured crossover: the domain count that actually minimises the wall
     clock on this machine (oversubscribed boxes regress past 1). *)
  let measured_domains = if wN < w1 then domains else 1 in
  printf config "  verify speedup (cascade off -> on, 1 domain): %.2fx\n" verify_speedup;
  printf config "  measured best domain count: %d\n" measured_domains;
  printf config "  determinism (domains=1 vs domains=%d): %s\n" domains
    (if identical then "identical pairs, candidates, cascade counters and probe stats"
     else "MISMATCH — results differ across domain counts!");
  printf config "  cascade losslessness (off vs on): %s\n"
    (if lossless then "identical pairs, distances and candidates"
     else "MISMATCH — cascade changed the join output!");
  (* Machine-readable record, hand-rolled (no JSON dependency in the
     toolchain).  One run object per configuration. *)
  let json_run label ~cascade d (o : Types.output)
      (ph : Tsj_core.Partsj.phase_times) wall =
    let s = o.Types.stats in
    let c = s.Types.cascade in
    Printf.sprintf
      "    {\n\
      \      \"label\": \"%s\",\n\
      \      \"domains\": %d,\n\
      \      \"cascade\": %b,\n\
      \      \"prep_wall_s\": %.6f,\n\
      \      \"sweep_wall_s\": %.6f,\n\
      \      \"total_wall_s\": %.6f,\n\
      \      \"candidate_time_s\": %.6f,\n\
      \      \"verify_time_s\": %.6f,\n\
      \      \"n_candidates\": %d,\n\
      \      \"n_results\": %d,\n\
      \      \"pruned_size\": %d,\n\
      \      \"pruned_labels\": %d,\n\
      \      \"pruned_degrees\": %d,\n\
      \      \"pruned_sed\": %d,\n\
      \      \"early_accepted\": %d,\n\
      \      \"kernel_verified\": %d\n\
      \    }"
      label d cascade ph.Tsj_core.Partsj.prep_wall_s
      ph.Tsj_core.Partsj.sweep_wall_s wall s.Types.candidate_time_s
      s.Types.verify_time_s s.Types.n_candidates s.Types.n_results
      c.Types.pruned_size c.Types.pruned_labels c.Types.pruned_degrees
      c.Types.pruned_sed c.Types.early_accepted c.Types.kernel_verified
  in
  let oc = open_out config.bench_json in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"partsj_join\",\n\
    \  \"dataset\": \"%s\",\n\
    \  \"n_trees\": %d,\n\
    \  \"tau\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"recommended_domains\": %d,\n\
    \  \"verify_speedup_cascade\": %.4f,\n\
    \  \"identical_across_domains\": %b,\n\
    \  \"cascade_lossless\": %b,\n\
    \  \"runs\": [\n%s,\n%s,\n%s\n  ]\n\
     }\n"
    profile.Profiles.name n tau config.seed measured_domains verify_speedup
    identical lossless
    (json_run "baseline_seed_verifier" ~cascade:false 1 ob phb wb)
    (json_run "cascade" ~cascade:true 1 o1 ph1 w1)
    (json_run "cascade_parallel" ~cascade:true domains oN phN wN);
  close_out oc;
  printf config "  wrote %s\n" config.bench_json;
  List.iter
    (fun (label, o) ->
      if not (consistent o) then
        failwith
          (Printf.sprintf
             "Experiments.perf: cascade counters of %s do not sum to the \
              candidate count"
             label))
    [ ("cascade off", ob); ("cascade on", o1); ("cascade on parallel", oN) ];
  if not identical then failwith "Experiments.perf: results differ across domain counts";
  if not lossless then failwith "Experiments.perf: cascade changed the join output"

(* DAG compression + cross-pair TED memo on the subtree-repetition-heavy
   [redundant] profile: before/after memory of the interned collection,
   before/after verify time of the consed join, and the bit-identity of
   the output with consing on/off at 1 and [domains] domains. *)
let dag config =
  Table.heading ~out:config.out
    "DAG compression — hash-consed subtrees + cross-pair TED memo (redundant \
     profile, tau = 3)";
  let profile = Profiles.redundant in
  let n = cardinality config profile in
  let trees = dataset config profile n in
  let tau = 3 in
  let domains = if config.domains > 1 then config.domains else 4 in
  (* Memory: the "before" side must not inherit the generator's physical
     fragment sharing (trees arriving from disk or the wire are fully
     materialized), so it measures deep copies; the "after" side is the
     shared views of one Dag store. *)
  let rec deep_copy (t : Tsj_tree.Tree.t) =
    Tsj_tree.Tree.node t.Tsj_tree.Tree.label
      (List.map deep_copy t.Tsj_tree.Tree.children)
  in
  let words_unshared = Obj.reachable_words (Obj.repr (Array.map deep_copy trees)) in
  let store = Tsj_tree.Dag.create () in
  let shared =
    Array.map (fun t -> Tsj_tree.Dag.tree (Tsj_tree.Dag.intern store t)) trees
  in
  let words_shared = Obj.reachable_words (Obj.repr shared) in
  let memory_ratio = float_of_int words_unshared /. float_of_int words_shared in
  printf config
    "\n  (n = %d, %d interned subtrees, %d distinct, sharing %.2fx)\n" n
    (Tsj_tree.Dag.interned store)
    (Tsj_tree.Dag.n_nodes store)
    (Tsj_tree.Dag.sharing store);
  printf config
    "  resident set: %d words unshared -> %d words interned (%.2fx smaller)\n"
    words_unshared words_shared memory_ratio;
  let run ~consing d =
    (* Best of three repetitions, by attributed verify time.  Every
       repetition is a fully cold join — a fresh Dag store mints fresh
       ids, so the cross-pair memo never carries anything over — and the
       heap is levelled first; the repetitions only damp scheduler and
       GC noise, they never warm a cache. *)
    let best = ref None in
    for _ = 1 to 3 do
      Gc.compact ();
      let output, wall =
        Tsj_util.Timer.wall (fun () ->
            Tsj_core.Partsj.join ~domains:d ~consing ~trees ~tau ())
      in
      match !best with
      | Some ((prev : Types.output), _)
        when prev.Types.stats.Types.verify_time_s
             <= output.Types.stats.Types.verify_time_s -> ()
      | _ -> best := Some (output, wall)
    done;
    Option.get !best
  in
  let o_off, w_off = run ~consing:false 1 in
  let o_on, w_on = run ~consing:true 1 in
  let o_onN, w_onN = run ~consing:true domains in
  let memo (o : Types.output) =
    let c = o.Types.stats.Types.cascade in
    (c.Types.memo_hits, c.Types.memo_misses)
  in
  let hits1, misses1 = memo o_on in
  let hit_rate =
    if hits1 + misses1 = 0 then 0.0
    else float_of_int hits1 /. float_of_int (hits1 + misses1)
  in
  let row label (o : Types.output) wall =
    let s = o.Types.stats in
    let h, m = memo o in
    [
      label;
      Table.seconds s.Types.verify_time_s;
      Table.seconds wall;
      Table.count s.Types.n_candidates;
      Table.count s.Types.n_results;
      Table.count h;
      Table.count m;
    ]
  in
  Table.print ~out:config.out
    ~header:
      [ "run"; "verify (attr)"; "total (wall)"; "candidates"; "results";
        "memo hits"; "memo misses" ]
    ~align:[ Table.Left; Right; Right; Right; Right; Right; Right ]
    [
      row "consing off, 1 dom" o_off w_off;
      row "consing on, 1 dom" o_on w_on;
      row (Printf.sprintf "consing on, %d dom" domains) o_onN w_onN;
    ];
  let lossless = Types.equal_deterministic o_off o_on in
  let identical = Types.equal_deterministic o_on o_onN in
  let verify_speedup =
    o_off.Types.stats.Types.verify_time_s /. o_on.Types.stats.Types.verify_time_s
  in
  printf config "  verify speedup (consing off -> on, 1 domain): %.2fx\n"
    verify_speedup;
  printf config "  memo hit rate (1 domain): %.1f%% (%d hits, %d misses)\n"
    (100.0 *. hit_rate) hits1 misses1;
  printf config "  consing losslessness (off vs on): %s\n"
    (if lossless then "identical pairs, distances, quarantine and counters"
     else "MISMATCH — consing changed the join output!");
  printf config "  determinism (domains=1 vs domains=%d): %s\n" domains
    (if identical then "identical output"
     else "MISMATCH — results differ across domain counts!");
  let json_run label ~consing d (o : Types.output) wall =
    let s = o.Types.stats in
    let h, m = memo o in
    Printf.sprintf
      "    {\n\
      \      \"label\": \"%s\",\n\
      \      \"domains\": %d,\n\
      \      \"consing\": %b,\n\
      \      \"total_wall_s\": %.6f,\n\
      \      \"candidate_time_s\": %.6f,\n\
      \      \"verify_time_s\": %.6f,\n\
      \      \"n_candidates\": %d,\n\
      \      \"n_results\": %d,\n\
      \      \"memo_hits\": %d,\n\
      \      \"memo_misses\": %d\n\
      \    }"
      label d consing wall s.Types.candidate_time_s s.Types.verify_time_s
      s.Types.n_candidates s.Types.n_results h m
  in
  let oc = open_out "BENCH_dag.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"dag_compression\",\n\
    \  \"dataset\": \"%s\",\n\
    \  \"n_trees\": %d,\n\
    \  \"tau\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"interned_subtrees\": %d,\n\
    \  \"distinct_subtrees\": %d,\n\
    \  \"subtree_sharing\": %.4f,\n\
    \  \"words_unshared\": %d,\n\
    \  \"words_interned\": %d,\n\
    \  \"memory_ratio\": %.4f,\n\
    \  \"verify_speedup_consing\": %.4f,\n\
    \  \"memo_hit_rate\": %.4f,\n\
    \  \"consing_lossless\": %b,\n\
    \  \"identical_across_domains\": %b,\n\
    \  \"runs\": [\n%s,\n%s,\n%s\n  ]\n\
     }\n"
    profile.Profiles.name n tau config.seed
    (Tsj_tree.Dag.interned store)
    (Tsj_tree.Dag.n_nodes store)
    (Tsj_tree.Dag.sharing store)
    words_unshared words_shared memory_ratio verify_speedup hit_rate lossless
    identical
    (json_run "consing_off" ~consing:false 1 o_off w_off)
    (json_run "consing_on" ~consing:true 1 o_on w_on)
    (json_run "consing_on_parallel" ~consing:true domains o_onN w_onN)
    ;
  close_out oc;
  printf config "  wrote BENCH_dag.json\n";
  if not lossless then failwith "Experiments.dag: consing changed the join output";
  if not identical then failwith "Experiments.dag: results differ across domain counts";
  if hits1 = 0 then
    failwith "Experiments.dag: no memo hits on the redundant profile";
  if config.scale >= 1.0 && memory_ratio < 2.0 then
    failwith
      (Printf.sprintf
         "Experiments.dag: interning reduced the resident set only %.2fx (< 2x)"
         memory_ratio)

let streaming config =
  Table.heading ~out:config.out
    "Extension — streaming (incremental) join throughput";
  let profile = Profiles.swissprot in
  let n = cardinality config profile in
  let trees = Profiles.instantiate profile ~seed:config.seed ~n in
  let tau = 2 in
  let inc = Tsj_core.Incremental.create ~tau () in
  let checkpoint = max 1 (n / 5) in
  let pairs = ref 0 in
  let t0 = Unix.gettimeofday () in
  let rows = ref [] in
  Array.iteri
    (fun i tree ->
      pairs := !pairs + List.length (Tsj_core.Incremental.add inc tree);
      if (i + 1) mod checkpoint = 0 then begin
        let dt = Unix.gettimeofday () -. t0 in
        rows :=
          [
            string_of_int (i + 1);
            Printf.sprintf "%.0f" (float_of_int (i + 1) /. dt);
            Table.count !pairs;
          ]
          :: !rows
      end)
    trees;
  printf config "\n  (%s profile, tau = %d, arrival order = generation order)\n"
    profile.Profiles.name tau;
  Table.print ~out:config.out
    ~header:[ "trees inserted"; "docs/s (cumulative)"; "pairs reported" ]
    ~align:[ Table.Right; Right; Right ]
    (List.rev !rows)

(* --- resilience: kill-and-resume and graceful degradation --- *)

let resilience config =
  Table.heading ~out:config.out
    "Extension — resilient execution (checkpoint/resume, per-pair budgets)";
  let profile = Profiles.synthetic in
  let n = cardinality config profile in
  let trees = dataset config profile n in
  let tau = 3 in
  (* Kill-and-resume: crash between two blocks, resume from the journal,
     demand bit-identical pairs, quarantine and deterministic counters —
     at one domain and at the configured parallel count. *)
  let rec_domains = Tsj_join.Parallel.recommended_domains () in
  let domain_counts =
    List.sort_uniq compare
      [ 1; (if config.domains > 1 then config.domains else min 4 rec_domains) ]
  in
  let rows =
    List.map
      (fun domains ->
        let r, dt =
          Tsj_util.Timer.wall (fun () ->
              Faults.run_kill_and_resume ~domains ~kill_at_block:1 ~trees ~tau ())
        in
        let identical = Types.equal_deterministic r.Faults.uninterrupted r.Faults.resumed in
        if not identical then
          failwith
            (Printf.sprintf
               "Experiments.resilience: resumed output differs at %d domain(s)" domains);
        [
          string_of_int domains;
          (if r.Faults.killed then "yes" else "no (too few blocks)");
          Table.count (List.length r.Faults.resumed.Types.pairs);
          (if identical then "yes" else "NO");
          Table.seconds dt;
        ])
      domain_counts
  in
  printf config "\n  (tau = %d, %d trees, crash injected at block 1, journal every block)\n"
    tau n;
  Table.print ~out:config.out
    ~header:[ "domains"; "crashed"; "pairs"; "resume identical"; "scenario time" ]
    ~align:[ Table.Right; Left; Right; Left; Right ]
    rows;
  (* Graceful degradation: a tiny per-pair budget must cost results only
     to the quarantine record, never invent pairs or lose one silently. *)
  let r = Faults.run_budgeted ~domains:config.domains ~pair_cost_limit:1 ~trees ~tau () in
  if r.Faults.false_positives <> [] then
    failwith "Experiments.resilience: budgeted join reported a false positive";
  if r.Faults.unaccounted <> [] then
    failwith "Experiments.resilience: budgeted join lost a pair without quarantining it";
  printf config
    "\n  per-pair budget 1: %d/%d pairs reported, %d quarantined, 0 false positives, \
     0 unaccounted\n"
    (List.length r.Faults.budgeted.Types.pairs)
    (List.length r.Faults.truth.Types.pairs)
    (List.length r.Faults.budgeted.Types.quarantined)

(* --- serving: the fault-tolerant similarity-search service --- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float ((p *. float_of_int (n - 1)) +. 0.5)))

let serving config =
  Table.heading ~out:config.out
    "Extension — fault-tolerant serving (deadlines, shedding, drain, crash-safe journal)";
  let module Server = Tsj_server.Server in
  let module Store = Tsj_server.Store in
  let module Client = Tsj_server.Client in
  let module Protocol = Tsj_server.Protocol in
  let profile = Profiles.swissprot in
  let n = max 20 (int_of_float (240.0 *. config.scale)) in
  let trees = Profiles.instantiate profile ~seed:config.seed ~n in
  let tau = 2 in
  let preload = n / 2 in
  let tmp = Filename.temp_file "tsj_serving" "" in
  Sys.remove tmp;
  Unix.mkdir tmp 0o755;
  let addr = Protocol.Unix_path (Filename.concat tmp "sock") in
  let dir = Filename.concat tmp "store" in
  let server_config =
    { (Server.default_config addr ~tau) with
      Server.dir = Some dir;
      domains = config.domains;
      (* High watermark: the bench measures clean request-path capacity;
         the shedding contract itself is exercised in the test suite. *)
      max_inflight = 1024;
      deadline_s = Some 0.5;
    }
  in
  let fail msg = failwith ("Experiments.serving: " ^ msg) in
  let ok_or_fail = function Ok v -> v | Error msg -> fail msg in
  let server = ok_or_fail (Server.create server_config) in
  let store = Server.store server in
  for i = 0 to preload - 1 do
    ignore (Store.add store trees.(i))
  done;
  Server.start server;
  (* Phase 1 — the newline protocol, lock-step: every client holds one
     connection and fires a mixed ADD/QUERY sequence, one reply per
     request before the next.  This is the "before" measurement — its
     throughput is bounded by round-trip latency, not by the server. *)
  let n_clients = 6 in
  (* enough requests that the burst both streams in the second half of
     the dataset (ADDs) and then queries it at least as many times *)
  let per_client = max 20 ((n - preload) * 2 / n_clients) in
  let mutex = Mutex.create () in
  let latencies = ref [] in
  let answered = ref 0 and busy = ref 0 and errs = ref 0 in
  let failures = ref [] in
  let next_add = Atomic.make preload in
  let client_thread c =
    match Client.connect addr with
    | Error msg -> Mutex.protect mutex (fun () -> failures := msg :: !failures)
    | Ok conn ->
      let rng = Tsj_util.Prng.create (config.seed + c) in
      let local = ref [] and a = ref 0 and b = ref 0 and e = ref 0 in
      for _ = 1 to per_client do
        let req =
          let k = Atomic.fetch_and_add next_add 1 in
          if k < n then Protocol.Add { seq = None; tree = trees.(k) }
          else Protocol.Query { tau; tree = trees.(Tsj_util.Prng.int rng n) }
        in
        let t0 = Tsj_util.Timer.now () in
        (match Client.request conn req with
        | Ok resp ->
          incr a;
          (match resp with
          | Protocol.Busy _ -> incr b
          | Protocol.Err _ -> incr e
          | _ -> ())
        | Error msg ->
          Mutex.protect mutex (fun () -> failures := ("request: " ^ msg) :: !failures));
        local := (Tsj_util.Timer.now () -. t0) :: !local
      done;
      Client.close conn;
      Mutex.protect mutex (fun () ->
          latencies := !local @ !latencies;
          answered := !answered + !a;
          busy := !busy + !b;
          errs := !errs + !e)
  in
  let (), text_wall =
    Tsj_util.Timer.wall (fun () ->
        let threads = List.init n_clients (Thread.create client_thread) in
        List.iter Thread.join threads)
  in
  (match !failures with msg :: _ -> fail msg | [] -> ());
  let sent = n_clients * per_client in
  if !answered <> sent then
    fail (Printf.sprintf "%d of %d requests went unanswered" (sent - !answered) sent);
  if !errs > 0 then fail "a well-formed request was answered ERR";
  (* Phase 2 — the same server over the binary framed protocol, with
     [window] requests pipelined on the connection.  The load generator
     runs in its own domain: systhreads all share one runtime lock, so a
     threaded client would measure lock contention, not the request
     path; and on a small machine one pipelined generator already
     saturates the server, while several generator domains only add
     scheduler noise to the tail.  1/128 of requests are ADDs of fresh
     trees (writes are present but stay out of the p99 bucket; the write
     path gets its own burst in phase 3); the reads are exact-match
     point queries (tau = 0) — the request path is under test here, not
     the join algorithm, which phase 1 and the paper experiments already
     exercise. *)
  let bin_clients = 1 in
  let window = 4 in
  let bin_per_client = max 1000 (int_of_float (24000.0 *. config.scale)) in
  let add_pool =
    Profiles.instantiate profile ~seed:(config.seed + 7919)
      ~n:(max 64 (bin_clients * bin_per_client / 100))
  in
  let next_fresh = Atomic.make 0 in
  let fsyncs0 = Store.fsyncs store in
  let bin_conns =
    Array.init bin_clients (fun _ -> ok_or_fail (Client.Bin.connect addr))
  in
  let bin_worker c conn =
    let rng = Tsj_util.Prng.create (config.seed + 1000 + c) in
    let pending = Hashtbl.create (2 * window) in
    let lats = ref [] and acked_adds = ref 0 and bad = ref 0 in
    let sent = ref 0 in
    let send_one () =
      let fresh =
        if Tsj_util.Prng.int rng 128 = 0 then begin
          let k = Atomic.fetch_and_add next_fresh 1 in
          if k < Array.length add_pool then Some add_pool.(k) else None
        end
        else None
      in
      let is_add = fresh <> None in
      let req =
        match fresh with
        | Some tree -> Protocol.Add { seq = None; tree }
        | None -> Protocol.Query { tau = 0; tree = trees.(Tsj_util.Prng.int rng n) }
      in
      let id = Client.Bin.send conn req in
      Hashtbl.replace pending id (Tsj_util.Timer.now (), is_add);
      incr sent
    in
    let recv_one () =
      match Client.Bin.recv conn with
      | Error msg -> failwith ("binary recv: " ^ msg)
      | Ok (id, resp) ->
        (match Hashtbl.find_opt pending id with
        | None -> failwith "binary reply to an unknown request id"
        | Some (t0, is_add) ->
          Hashtbl.remove pending id;
          lats := (Tsj_util.Timer.now () -. t0) :: !lats;
          (match resp with
          | Protocol.Added _ when is_add -> incr acked_adds
          | Protocol.Hits _ when not is_add -> ()
          | _ -> incr bad))
    in
    while !sent < bin_per_client || Hashtbl.length pending > 0 do
      while !sent < bin_per_client && Hashtbl.length pending < window do
        send_one ()
      done;
      Client.Bin.flush conn;
      recv_one ()
    done;
    Client.Bin.close conn;
    (!lats, !acked_adds, !bad)
  in
  let bin_results, bin_wall =
    Tsj_util.Timer.wall (fun () ->
        Array.mapi (fun c conn -> Domain.spawn (fun () -> bin_worker c conn)) bin_conns
        |> Array.map Domain.join)
  in
  let bin_lats = Array.fold_left (fun acc (l, _, _) -> List.rev_append l acc) [] bin_results in
  let bin_adds = Array.fold_left (fun acc (_, a, _) -> acc + a) 0 bin_results in
  let bin_bad = Array.fold_left (fun acc (_, _, b) -> acc + b) 0 bin_results in
  if bin_bad > 0 then
    fail (Printf.sprintf "%d binary replies were BUSY/ERR or misattributed" bin_bad);
  let bin_sent = bin_clients * bin_per_client in
  let bin_fsyncs = Store.fsyncs store - fsyncs0 in
  let fsyncs_per_add =
    if bin_adds = 0 then 0.0 else float_of_int bin_fsyncs /. float_of_int bin_adds
  in
  let bin_rps = float_of_int bin_sent /. bin_wall in
  (* Phase 3 — group commit under a pure write burst: one pipelined
     client streams ADDs with a deep window, so concurrent ADDs coalesce
     into batches sharing one journal append + one fsync.  fsyncs per
     acked ADD is the amortization; 1.0 is the unbatched (lock-step)
     cost. *)
  let burst_n = max 256 (int_of_float (2048.0 *. config.scale)) in
  let burst_window = 64 in
  let burst_pool =
    Profiles.instantiate profile ~seed:(config.seed + 104729) ~n:burst_n
  in
  let burst_f0 = Store.fsyncs store in
  let burst_conn = ok_or_fail (Client.Bin.connect addr) in
  let burst_worker () =
    let pending = Hashtbl.create (2 * burst_window) in
    let sent = ref 0 and acked = ref 0 in
    while !sent < burst_n || Hashtbl.length pending > 0 do
      while !sent < burst_n && Hashtbl.length pending < burst_window do
        let id =
          Client.Bin.send burst_conn
            (Protocol.Add { seq = None; tree = burst_pool.(!sent) })
        in
        Hashtbl.replace pending id ();
        incr sent
      done;
      Client.Bin.flush burst_conn;
      match Client.Bin.recv burst_conn with
      | Error msg -> failwith ("burst recv: " ^ msg)
      | Ok (id, resp) -> (
        Hashtbl.remove pending id;
        match resp with Protocol.Added _ -> incr acked | _ -> ())
    done;
    Client.Bin.close burst_conn;
    !acked
  in
  let burst_acked, burst_wall =
    Tsj_util.Timer.wall (fun () -> Domain.join (Domain.spawn burst_worker))
  in
  if burst_acked <> burst_n then
    fail (Printf.sprintf "add burst: only %d of %d ADDs acked" burst_acked burst_n);
  let burst_fsyncs = Store.fsyncs store - burst_f0 in
  let burst_fpa = float_of_int burst_fsyncs /. float_of_int burst_acked in
  let burst_rps = float_of_int burst_n /. burst_wall in
  let stats =
    let conn = ok_or_fail (Client.connect addr) in
    let s =
      match Client.request conn Protocol.Stats with
      | Ok (Protocol.Stats_reply s) -> s
      | Ok _ | Error _ -> fail "STATS request failed"
    in
    (* Graceful drain over the wire; flushes snapshot + journal. *)
    (match Client.request conn Protocol.Drain with
    | Ok Protocol.Drained -> ()
    | Ok _ | Error _ -> fail "DRAIN request failed");
    Client.close conn;
    s
  in
  Server.wait server;
  if not (Server.drained server) then fail "server did not finish draining";
  (* A cold start after the drain must see the full index and an empty
     journal. *)
  let reopened = ok_or_fail (Store.open_ ~dir ~tau ()) in
  if Store.n_trees reopened <> stats.Protocol.trees then
    fail "cold start after drain lost trees";
  if Store.journal_records reopened <> 0 then
    fail "drain left journal records behind";
  Store.close reopened;
  (* Crash-safety scenario: kill mid-add, restart, compare answers. *)
  let kill =
    Faults.run_server_kill_and_restart ~domains:config.domains
      ~kill_at_add:(preload / 2)
      ~trees:(Array.sub trees 0 preload)
      ~queries:(Array.sub trees 0 (min 5 preload))
      ~tau ()
  in
  if not kill.Faults.answers_match then
    fail "restarted store answers differently from the acknowledged prefix";
  let sorted = Array.of_list !latencies in
  Array.sort compare sorted;
  let ms p = percentile sorted p *. 1000.0 in
  let bin_sorted = Array.of_list bin_lats in
  Array.sort compare bin_sorted;
  let bms p = percentile bin_sorted p *. 1000.0 in
  let text_rps = float_of_int sent /. text_wall in
  printf config
    "\n  (%s profile, %d trees preloaded + %d streamed, tau = %d,\n\
    \   text: %d clients x %d lock-step requests; binary: %d domains x %d \
     requests, window %d,\n   max_inflight = %d, deadline = %.1fs)\n"
    profile.Profiles.name preload (n - preload) tau n_clients per_client
    bin_clients bin_per_client window
    server_config.Server.max_inflight
    (Option.value server_config.Server.deadline_s ~default:0.0);
  Table.print ~out:config.out
    ~header:[ "metric"; "value" ]
    ~align:[ Table.Left; Table.Right ]
    [
      [ "requests answered (text + binary)";
        Printf.sprintf "%d / %d" (!answered + bin_sent) (sent + bin_sent) ];
      [ "shed (BUSY)"; string_of_int stats.Protocol.shed ];
      [ "degraded answers"; string_of_int stats.Protocol.degraded ];
      [ "trees served"; string_of_int stats.Protocol.trees ];
      [ "text lock-step throughput"; Printf.sprintf "%.0f req/s" text_rps ];
      [ "text p50 / p99"; Printf.sprintf "%.2f / %.2f ms" (ms 0.50) (ms 0.99) ];
      [ "binary pipelined throughput"; Printf.sprintf "%.0f req/s" bin_rps ];
      [ "binary p50 / p99"; Printf.sprintf "%.3f / %.3f ms" (bms 0.50) (bms 0.99) ];
      [ "binary vs text speedup"; Printf.sprintf "%.1fx" (bin_rps /. text_rps) ];
      [ "ADD burst throughput"; Printf.sprintf "%.0f add/s" burst_rps ];
      [ Printf.sprintf "fsyncs per ADD (burst of %d)" burst_n;
        Printf.sprintf "%.4f (%d / %d)" burst_fpa burst_fsyncs burst_acked ];
      [ "kill-and-restart"; (if kill.Faults.answers_match then "bit-identical" else "NO") ];
    ];
  let oc = open_out "BENCH_serving.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"tsj_serving\",\n\
    \  \"dataset\": \"%s\",\n\
    \  \"n_trees\": %d,\n\
    \  \"preloaded\": %d,\n\
    \  \"tau\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"domains\": %d,\n\
    \  \"clients\": %d,\n\
    \  \"requests\": %d,\n\
    \  \"answered\": %d,\n\
    \  \"shed\": %d,\n\
    \  \"degraded\": %d,\n\
    \  \"errors\": %d,\n\
    \  \"text_throughput_rps\": %.1f,\n\
    \  \"text_latency_p50_ms\": %.3f,\n\
    \  \"text_latency_p95_ms\": %.3f,\n\
    \  \"text_latency_p99_ms\": %.3f,\n\
    \  \"binary_clients\": %d,\n\
    \  \"binary_window\": %d,\n\
    \  \"binary_requests\": %d,\n\
    \  \"throughput_rps\": %.1f,\n\
    \  \"latency_p50_ms\": %.3f,\n\
    \  \"latency_p95_ms\": %.3f,\n\
    \  \"latency_p99_ms\": %.3f,\n\
    \  \"speedup_vs_text\": %.2f,\n\
    \  \"binary_acked_adds\": %d,\n\
    \  \"mixed_fsyncs_per_add\": %.4f,\n\
    \  \"add_burst_requests\": %d,\n\
    \  \"add_burst_window\": %d,\n\
    \  \"add_burst_rps\": %.1f,\n\
    \  \"fsyncs_per_add\": %.4f,\n\
    \  \"kill_restart_identical\": %b,\n\
    \  \"drain_clean\": true\n\
     }\n"
    profile.Profiles.name n preload tau config.seed config.domains n_clients sent
    !answered stats.Protocol.shed stats.Protocol.degraded !errs
    text_rps (ms 0.50) (ms 0.95) (ms 0.99)
    bin_clients window bin_sent bin_rps
    (bms 0.50) (bms 0.95) (bms 0.99) (bin_rps /. text_rps)
    bin_adds fsyncs_per_add
    burst_n burst_window burst_rps burst_fpa kill.Faults.answers_match;
  close_out oc;
  printf config "  wrote BENCH_serving.json\n";
  (* Tidy the socket/store temp dir. *)
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
      end
      else try Sys.remove path with Sys_error _ -> ()
  in
  rm tmp

(* --- serving-soak: sustained mixed workload at fixed connection
   counts --- *)

let serving_soak config =
  Table.heading ~out:config.out
    "Extension — serving soak (sustained mixed workload, fixed connection counts)";
  let module Server = Tsj_server.Server in
  let module Store = Tsj_server.Store in
  let module Client = Tsj_server.Client in
  let module Protocol = Tsj_server.Protocol in
  let profile = Profiles.swissprot in
  let n = max 20 (int_of_float (240.0 *. config.scale)) in
  let trees = Profiles.instantiate profile ~seed:config.seed ~n in
  let tau = 2 in
  (* 60 s of load at full scale: four rungs of 15 s each; --scale shrinks
     the rungs proportionally for smoke runs. *)
  let rung_s = 15.0 *. min 1.0 config.scale in
  let rungs = [ 1; 2; 4; 8 ] in
  let window = 16 in
  let tmp = Filename.temp_file "tsj_soak" "" in
  Sys.remove tmp;
  Unix.mkdir tmp 0o755;
  let addr = Protocol.Unix_path (Filename.concat tmp "sock") in
  let dir = Filename.concat tmp "store" in
  let fail msg = failwith ("Experiments.serving_soak: " ^ msg) in
  let ok_or_fail = function Ok v -> v | Error msg -> fail msg in
  let server =
    ok_or_fail
      (Server.create
         { (Server.default_config addr ~tau) with
           Server.dir = Some dir;
           domains = config.domains;
           max_inflight = 1024;
           deadline_s = Some 0.5;
         })
  in
  let store = Server.store server in
  Array.iter (fun t -> ignore (Store.add store t)) trees;
  Server.start server;
  (* Fresh trees for the write side of the mix, shared across rungs; an
     exhausted pool degrades to pure reads rather than re-adding
     duplicates (whose partner lists would grow without bound). *)
  let pool_n = max 256 (int_of_float (8192.0 *. min 1.0 config.scale)) in
  let add_pool = Profiles.instantiate profile ~seed:(config.seed + 7919) ~n:pool_n in
  let next_fresh = Atomic.make 0 in
  let run_rung conns =
    let fsyncs0 = Store.fsyncs store in
    let sockets = Array.init conns (fun _ -> ok_or_fail (Client.Bin.connect addr)) in
    let worker c conn =
      let rng = Tsj_util.Prng.create (config.seed + 500 + c) in
      let pending = Hashtbl.create (2 * window) in
      let lats = ref [] and acked_adds = ref 0 and bad = ref 0 and sent = ref 0 in
      let deadline = Tsj_util.Timer.now () +. rung_s in
      let live () = Tsj_util.Timer.now () < deadline in
      let send_one () =
        let fresh =
          if Tsj_util.Prng.int rng 128 = 0 then begin
            let k = Atomic.fetch_and_add next_fresh 1 in
            if k < pool_n then Some add_pool.(k) else None
          end
          else None
        in
        let is_add = fresh <> None in
        let req =
          match fresh with
          | Some tree -> Protocol.Add { seq = None; tree }
          | None -> Protocol.Query { tau = 0; tree = trees.(Tsj_util.Prng.int rng n) }
        in
        let id = Client.Bin.send conn req in
        Hashtbl.replace pending id (Tsj_util.Timer.now (), is_add);
        incr sent
      in
      let recv_one () =
        match Client.Bin.recv conn with
        | Error msg -> failwith ("soak recv: " ^ msg)
        | Ok (id, resp) ->
          (match Hashtbl.find_opt pending id with
          | None -> failwith "soak reply to an unknown request id"
          | Some (t0, is_add) ->
            Hashtbl.remove pending id;
            lats := (Tsj_util.Timer.now () -. t0) :: !lats;
            (match resp with
            | Protocol.Added _ when is_add -> incr acked_adds
            | Protocol.Hits _ when not is_add -> ()
            | _ -> incr bad))
      in
      while live () || Hashtbl.length pending > 0 do
        while live () && Hashtbl.length pending < window do
          send_one ()
        done;
        Client.Bin.flush conn;
        if Hashtbl.length pending > 0 then recv_one ()
      done;
      Client.Bin.close conn;
      (!sent, !lats, !acked_adds, !bad)
    in
    let results, wall =
      Tsj_util.Timer.wall (fun () ->
          Array.mapi (fun c conn -> Domain.spawn (fun () -> worker c conn)) sockets
          |> Array.map Domain.join)
    in
    let sent = Array.fold_left (fun acc (s, _, _, _) -> acc + s) 0 results in
    let lats = Array.fold_left (fun acc (_, l, _, _) -> List.rev_append l acc) [] results in
    let adds = Array.fold_left (fun acc (_, _, a, _) -> acc + a) 0 results in
    let bad = Array.fold_left (fun acc (_, _, _, b) -> acc + b) 0 results in
    if bad > 0 then
      fail (Printf.sprintf "%d soak replies were BUSY/ERR or misattributed" bad);
    let fsyncs = Store.fsyncs store - fsyncs0 in
    let sorted = Array.of_list lats in
    Array.sort compare sorted;
    let p p' = percentile sorted p' *. 1000.0 in
    ( conns, sent, float_of_int sent /. wall, p 0.50, p 0.99, adds,
      (if adds = 0 then 0.0 else float_of_int fsyncs /. float_of_int adds) )
  in
  let rows = List.map run_rung rungs in
  (let conn = ok_or_fail (Client.connect addr) in
   (match Client.request conn Protocol.Drain with
   | Ok Protocol.Drained -> ()
   | Ok _ | Error _ -> fail "DRAIN request failed");
   Client.close conn);
  Server.wait server;
  printf config
    "\n  (%s profile, %d trees preloaded, tau = %d; %.0f s per rung, window %d, \
     ADDs 1/128)\n"
    profile.Profiles.name n tau rung_s window;
  Table.print ~out:config.out
    ~header:[ "connections"; "requests"; "throughput"; "p50"; "p99"; "fsyncs/ADD" ]
    ~align:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    (List.map
       (fun (conns, sent, rps, p50, p99, adds, fpa) ->
         [
           string_of_int conns;
           string_of_int sent;
           Printf.sprintf "%.0f req/s" rps;
           Printf.sprintf "%.3f ms" p50;
           Printf.sprintf "%.3f ms" p99;
           (* A rung past the fresh-tree pool runs pure reads; there is
              no per-ADD figure to report. *)
           (if adds = 0 then "n/a (no ADDs)" else Printf.sprintf "%.4f" fpa);
         ])
       rows);
  let oc = open_out "BENCH_serving_soak.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"tsj_serving_soak\",\n\
    \  \"dataset\": \"%s\",\n\
    \  \"preloaded\": %d,\n\
    \  \"tau\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"rung_seconds\": %.1f,\n\
    \  \"window\": %d,\n\
    \  \"rungs\": [\n%s\n  ]\n\
     }\n"
    profile.Profiles.name n tau config.seed rung_s window
    (String.concat ",\n"
       (List.map
          (fun (conns, sent, rps, p50, p99, adds, fpa) ->
            Printf.sprintf
              "    { \"connections\": %d, \"requests\": %d, \"throughput_rps\": %.1f, \
               \"latency_p50_ms\": %.3f, \"latency_p99_ms\": %.3f, \"acked_adds\": %d, \
               \"fsyncs_per_add\": %.4f }"
              conns sent rps p50 p99 adds fpa)
          rows));
  close_out oc;
  printf config "  wrote BENCH_serving_soak.json\n";
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
      end
      else try Sys.remove path with Sys_error _ -> ()
  in
  rm tmp

(* --- overload: fair admission and deadline propagation under a
   widening greedy burst --- *)

let overload config =
  Table.heading ~out:config.out
    "Extension — overload robustness (fair admission, deadline propagation, \
     hedged reads)";
  let fail msg = failwith ("Experiments.overload: " ^ msg) in
  let profile = Profiles.swissprot in
  let n = max 16 (int_of_float (64.0 *. config.scale)) in
  let trees = Profiles.instantiate profile ~seed:config.seed ~n in
  let queries = Profiles.instantiate profile ~seed:(config.seed + 1) ~n:4 in
  let tau = 2 in
  let duration_s = Float.max 0.5 (Float.min 2.0 config.scale) in
  let rungs = if config.scale < 0.1 then [ 2 ] else [ 1; 2; 5; 10 ] in
  let results =
    List.map
      (fun greedy ->
        let r =
          Faults.run_overload_storm ~seed:(config.seed + greedy) ~duration_s
            ~greedy ~trees ~queries ~tau ()
        in
        if not r.Faults.ov_goodput_ok then
          fail
            (Printf.sprintf
               "goodput collapsed at %d greedy clients (%.0f -> %.0f rps)"
               greedy r.Faults.ov_baseline_rps r.Faults.ov_storm_rps);
        if not r.Faults.ov_no_starvation then
          fail (Printf.sprintf "conforming client starved at %d greedy clients" greedy);
        if r.Faults.ov_late_answers > 0 then
          fail
            (Printf.sprintf "%d answers delivered past their deadline"
               r.Faults.ov_late_answers);
        if r.Faults.ov_wrong_answers > 0 then fail "overload changed an answer";
        if r.Faults.ov_hedge_mismatches > 0 then fail "hedge-raced replies diverged";
        if not (r.Faults.ov_expired_add_rejected && r.Faults.ov_trees_stable) then
          fail "an expired ADD was not refused cleanly";
        (greedy, r))
      rungs
  in
  printf config
    "\n  (%s profile, %d trees, tau = %d, %.1fs per rung; bucket 80 req/s,\n\
    \   burst 16, watermark 32, 50 ms greedy deadlines, 300 ms idle reaper)\n"
    profile.Profiles.name n tau duration_s;
  Table.print ~out:config.out
    ~header:
      [ "greedy conns"; "baseline rps"; "storm rps"; "goodput"; "greedy sent";
        "greedy shed"; "expired"; "reaped" ]
    ~align:
      [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Right; Table.Right ]
    (List.map
       (fun (greedy, r) ->
         [
           string_of_int greedy;
           Printf.sprintf "%.0f" r.Faults.ov_baseline_rps;
           Printf.sprintf "%.0f" r.Faults.ov_storm_rps;
           Printf.sprintf "%.0f%%"
             (100. *. r.Faults.ov_storm_rps
             /. Float.max 1e-9 r.Faults.ov_baseline_rps);
           string_of_int r.Faults.ov_greedy_sent;
           string_of_int r.Faults.ov_greedy_shed;
           string_of_int r.Faults.ov_expired;
           string_of_int r.Faults.ov_reaped;
         ])
       results);
  let oc = open_out "BENCH_overload.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"tsj_overload\",\n\
    \  \"dataset\": \"%s\",\n\
    \  \"n_trees\": %d,\n\
    \  \"tau\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"duration_s\": %.2f,\n\
    \  \"rungs\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    profile.Profiles.name n tau config.seed duration_s
    (String.concat ",\n"
       (List.map
          (fun (greedy, r) ->
            Printf.sprintf
              "    { \"greedy\": %d, \"baseline_rps\": %.1f, \"storm_rps\": \
               %.1f, \"conforming_sent\": %d, \"conforming_answered\": %d, \
               \"greedy_sent\": %d, \"greedy_answered\": %d, \"greedy_shed\": \
               %d, \"late_answers\": %d, \"wrong_answers\": %d, \
               \"hedge_mismatches\": %d, \"expired\": %d, \"reaped\": %d }"
              greedy r.Faults.ov_baseline_rps r.Faults.ov_storm_rps
              r.Faults.ov_conforming_sent r.Faults.ov_conforming_answered
              r.Faults.ov_greedy_sent r.Faults.ov_greedy_answered
              r.Faults.ov_greedy_shed r.Faults.ov_late_answers
              r.Faults.ov_wrong_answers r.Faults.ov_hedge_mismatches
              r.Faults.ov_expired r.Faults.ov_reaped)
          results));
  close_out oc;
  printf config "  wrote BENCH_overload.json\n"

(* --- replication: journal streaming, quorum ACKs, epoch-fenced
   failover --- *)

let replication config =
  Table.heading ~out:config.out
    "Extension — replicated serving (journal streaming, quorum ACKs, epoch-fenced \
     failover)";
  let module Server = Tsj_server.Server in
  let module Store = Tsj_server.Store in
  let module Client = Tsj_server.Client in
  let module Protocol = Tsj_server.Protocol in
  let fail msg = failwith ("Experiments.replication: " ^ msg) in
  let ok_or_fail = function Ok v -> v | Error msg -> fail msg in
  let profile = Profiles.swissprot in
  let n = max 24 (int_of_float (160.0 *. config.scale)) in
  let trees = Profiles.instantiate profile ~seed:config.seed ~n in
  let tau = 2 in
  let tmp = Filename.temp_file "tsj_repl" "" in
  Sys.remove tmp;
  Unix.mkdir tmp 0o755;
  let addr i = Protocol.Unix_path (Filename.concat tmp (Printf.sprintf "sock%d" i)) in
  let dir i = Filename.concat tmp (Printf.sprintf "store%d" i) in
  let mk ~primary ~sync_from i =
    let config' =
      { (Server.default_config (addr i) ~tau) with
        Server.dir = Some (dir i);
        domains = config.domains;
        quorum = 2;
        sync_from;
        primary;
      }
    in
    let server = ok_or_fail (Server.create config') in
    Server.start server;
    server
  in
  (* one primary, two journal-streaming followers; every ADD is
     acknowledged only once durable on two of the three nodes *)
  let p0 = mk ~primary:true ~sync_from:[] 0 in
  let r1 = mk ~primary:false ~sync_from:[ addr 0 ] 1 in
  let r2 = mk ~primary:false ~sync_from:[ addr 0; addr 1 ] 2 in
  let rng = Tsj_util.Prng.create (config.seed + 99) in
  let fo =
    Client.Failover.create ~timeout_s:2.0 ~rng [ addr 0; addr 1; addr 2 ]
  in
  (* the client-side safe-retry ADD; "quorum not reached" while a
     follower is still registering is retried here *)
  let add_acked tree =
    let deadline = Tsj_util.Timer.now () +. 30.0 in
    let rec go () =
      match Client.Failover.add fo tree with
      | Ok (Protocol.Added { id; _ }) -> id
      | (Ok (Protocol.Err _) | Ok (Protocol.Fenced _) | Error _)
        when Tsj_util.Timer.now () < deadline ->
        Unix.sleepf 0.02;
        go ()
      | Ok r -> fail ("ADD not acknowledged: " ^ Protocol.render_response r)
      | Error msg -> fail ("ADD failed: " ^ msg)
    in
    go ()
  in
  let preload = n / 2 in
  (* phase 1: quorum-acked writes into the healthy cluster *)
  ignore (add_acked trees.(0));
  let (), pre_wall =
    Tsj_util.Timer.wall (fun () ->
        for i = 1 to preload - 1 do
          ignore (add_acked trees.(i))
        done)
  in
  let pre_rps = float_of_int (preload - 1) /. Float.max 1e-9 pre_wall in
  (* phase 2: kill -9 the primary mid-service, promote a replica over
     the wire, and measure abort -> first acknowledged ADD *)
  Server.abort p0;
  let t0 = Tsj_util.Timer.now () in
  (let conn = ok_or_fail (Client.connect (addr 1)) in
   (match Client.request conn Protocol.Promote with
   | Ok (Protocol.Promoted e) ->
     if e <> 1 then fail (Printf.sprintf "promotion at epoch %d, expected 1" e)
   | Ok r -> fail ("PROMOTE failed: " ^ Protocol.render_response r)
   | Error msg -> fail ("PROMOTE failed: " ^ msg));
   Client.close conn);
  let first_id = add_acked trees.(preload) in
  let failover_latency = Tsj_util.Timer.now () -. t0 in
  if first_id <> preload then
    fail (Printf.sprintf "post-failover ADD got seq %d, expected %d" first_id preload);
  (* phase 3: post-failover throughput on the surviving pair *)
  let (), post_wall =
    Tsj_util.Timer.wall (fun () ->
        for i = preload + 1 to n - 1 do
          ignore (add_acked trees.(i))
        done)
  in
  let post_rps = float_of_int (n - preload - 1) /. Float.max 1e-9 post_wall in
  (* phase 4: both survivors must answer queries bit-identically to a
     single-node store that never failed *)
  let reference = ok_or_fail (Store.open_ ~domains:config.domains ~tau ()) in
  Array.iter (fun tree -> ignore (Store.add reference tree)) trees;
  let conn1 = ok_or_fail (Client.connect (addr 1)) in
  let conn2 = ok_or_fail (Client.connect (addr 2)) in
  let wait_trees conn label =
    let deadline = Tsj_util.Timer.now () +. 30.0 in
    let rec go () =
      match Client.request conn Protocol.Stats with
      | Ok (Protocol.Stats_reply s) when s.Protocol.trees = n && s.Protocol.epoch = 1 ->
        ()
      | Ok _ when Tsj_util.Timer.now () < deadline ->
        Unix.sleepf 0.02;
        go ()
      | Ok _ -> fail (label ^ " never converged")
      | Error msg -> fail (label ^ " stats failed: " ^ msg)
    in
    go ()
  in
  wait_trees conn1 "promoted primary";
  wait_trees conn2 "surviving replica";
  let queries = Array.init (min 6 n) (fun k -> trees.(k * (n / min 6 n))) in
  let survivors_identical =
    Array.for_all
      (fun q ->
        let expected = (Store.query reference q).Tsj_core.Incremental.hits in
        List.for_all
          (fun conn ->
            match Client.request conn (Protocol.Query { tau; tree = q }) with
            | Ok (Protocol.Hits { degraded = false; hits; _ }) -> hits = expected
            | Ok _ | Error _ -> false)
          [ conn1; conn2 ])
      queries
  in
  Store.close reference;
  if not survivors_identical then
    fail "a survivor answers differently from the unfailed reference";
  Client.close conn1;
  Client.close conn2;
  List.iter
    (fun s ->
      (try Server.drain s with _ -> ());
      try Server.wait s with _ -> ())
    [ r1; r2; p0 ];
  (* phase 5: the randomized kill/partition storm, in process *)
  let storm_trees = Array.sub trees 0 (min 24 n) in
  let storm =
    Faults.run_failover_storm ~domains:config.domains ~seed:config.seed ~rounds:30
      ~trees:storm_trees
      ~queries:(Array.sub storm_trees 0 (min 4 (Array.length storm_trees)))
      ~tau ()
  in
  if not storm.Faults.acked_preserved then fail "storm lost an acknowledged ADD";
  if not storm.Faults.single_writer then fail "storm saw two writers in one epoch";
  if not (storm.Faults.converged && storm.Faults.cluster_answers_match) then
    fail "storm cluster did not converge to the unfailed reference";
  (* phase 6: the same storm shape once over the binary wire protocol —
     framed safe-retry ADDs with explicit seqs against a fresh 3-node
     cluster, kill -9 of the primary, promotion of the most advanced
     survivor via a binary PROMOTE frame — checking the two failover
     invariants end to end through the frames: every acknowledged ADD
     survives bit-identically, and no epoch has two acking writers. *)
  let bin_acked_preserved, bin_single_writer =
    let tmp2 = Filename.temp_file "tsj_binstorm" "" in
    Sys.remove tmp2;
    Unix.mkdir tmp2 0o755;
    let baddr i = Protocol.Unix_path (Filename.concat tmp2 (Printf.sprintf "sock%d" i)) in
    let bdir i = Filename.concat tmp2 (Printf.sprintf "store%d" i) in
    let mk ~primary ~sync_from i =
      let config' =
        { (Server.default_config (baddr i) ~tau) with
          Server.dir = Some (bdir i);
          domains = config.domains;
          quorum = 2;
          sync_from;
          primary;
        }
      in
      let server = ok_or_fail (Server.create config') in
      Server.start server;
      server
    in
    let nodes =
      [|
        mk ~primary:true ~sync_from:[] 0;
        mk ~primary:false ~sync_from:[ baddr 0; baddr 2 ] 1;
        mk ~primary:false ~sync_from:[ baddr 0; baddr 1 ] 2;
      |]
    in
    let alive = [| true; true; true |] in
    let with_bin i f =
      match Client.Bin.connect ~timeout_s:2.0 (baddr i) with
      | Error _ as e -> e
      | Ok b ->
        let r = f b in
        Client.Bin.close b;
        r
    in
    let bin_stats i =
      with_bin i (fun b ->
          match Client.Bin.request b Protocol.Stats with
          | Ok (Protocol.Stats_reply s) -> Ok s
          | Ok r -> Error (Protocol.render_response r)
          | Error _ as e -> e)
    in
    (* (seq, tree, epoch of the acking node, node) *)
    let acked = ref [] in
    let current = ref 0 in
    let add_acked_bin seq tree =
      let deadline = Tsj_util.Timer.now () +. 30.0 in
      let rec go () =
        if Tsj_util.Timer.now () > deadline then
          fail (Printf.sprintf "binary storm: ADD %d never acknowledged" seq)
        else begin
          let i = !current in
          let outcome =
            if not alive.(i) then `Rotate
            else
              match
                with_bin i (fun b ->
                    match Client.Bin.request b (Protocol.Add { seq = Some seq; tree }) with
                    | Ok (Protocol.Added _) -> (
                      match Client.Bin.request b Protocol.Stats with
                      | Ok (Protocol.Stats_reply s) -> Ok (`Acked s.Protocol.epoch)
                      | Ok _ | Error _ -> Ok (`Acked (-1)))
                    | Ok (Protocol.Fenced _) -> Ok `Rotate
                    | Ok (Protocol.Busy _ | Protocol.Err _) -> Ok `Retry
                    | Ok r -> Error (Protocol.render_response r)
                    | Error _ as e -> e)
              with
              | Ok o -> o
              | Error _ -> `Rotate
          in
          match outcome with
          | `Acked epoch -> acked := (seq, tree, epoch, i) :: !acked
          | `Rotate ->
            current := (i + 1) mod 3;
            Unix.sleepf 0.02;
            go ()
          | `Retry ->
            Unix.sleepf 0.02;
            go ()
        end
      in
      go ()
    in
    let n_storm = min 18 (Array.length trees) in
    let half = n_storm / 2 in
    for k = 0 to half - 1 do
      add_acked_bin k trees.(k)
    done;
    (* kill -9 whichever node holds the write mandate, then promote the
       most advanced survivor over a binary PROMOTE frame *)
    let p = !current in
    Server.abort nodes.(p);
    alive.(p) <- false;
    let best =
      let score i =
        if not alive.(i) then None
        else
          match bin_stats i with
          | Ok s -> Some (s.Protocol.epoch, s.Protocol.trees)
          | Error _ -> None
      in
      let candidates = List.filter_map (fun i -> Option.map (fun s -> (s, i)) (score i)) [ 0; 1; 2 ] in
      match List.sort (fun a b -> compare b a) candidates with
      | (_, i) :: _ -> i
      | [] -> fail "binary storm: no survivor reachable"
    in
    (match
       with_bin best (fun b -> Client.Bin.request b Protocol.Promote)
     with
    | Ok (Protocol.Promoted _) -> ()
    | Ok r -> fail ("binary storm: PROMOTE answered " ^ Protocol.render_response r)
    | Error msg -> fail ("binary storm: PROMOTE failed: " ^ msg));
    current := best;
    for k = half to n_storm - 1 do
      add_acked_bin k trees.(k)
    done;
    (* heal: both survivors converge, then check the invariants against
       their stores directly *)
    let survivors = List.filter (fun i -> alive.(i)) [ 0; 1; 2 ] in
    List.iter
      (fun i ->
        let deadline = Tsj_util.Timer.now () +. 30.0 in
        let rec go () =
          match bin_stats i with
          | Ok s when s.Protocol.trees >= n_storm -> ()
          | _ when Tsj_util.Timer.now () < deadline ->
            Unix.sleepf 0.02;
            go ()
          | _ -> fail (Printf.sprintf "binary storm: node %d never converged" i)
        in
        go ())
      survivors;
    let preserved =
      List.for_all
        (fun (seq, tree, _, _) ->
          List.for_all
            (fun i ->
              let store = Server.store nodes.(i) in
              Store.n_trees store > seq
              && Tsj_tree.Tree.equal tree (Store.tree store seq))
            survivors)
        !acked
    in
    let single_writer =
      let by_epoch = Hashtbl.create 4 in
      List.for_all
        (fun (_, _, epoch, node) ->
          epoch < 0
          ||
          match Hashtbl.find_opt by_epoch epoch with
          | None ->
            Hashtbl.replace by_epoch epoch node;
            true
          | Some n' -> n' = node)
        !acked
    in
    Array.iteri
      (fun i s ->
        if alive.(i) then (try Server.drain s with _ -> ());
        try Server.wait s with _ -> ())
      nodes;
    let rec rm path =
      if Sys.file_exists path then
        if Sys.is_directory path then begin
          Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
          (try Unix.rmdir path with Unix.Unix_error _ -> ())
        end
        else try Sys.remove path with Sys_error _ -> ()
    in
    rm tmp2;
    (preserved, single_writer)
  in
  if not bin_acked_preserved then fail "binary-protocol storm lost an acknowledged ADD";
  if not bin_single_writer then
    fail "binary-protocol storm saw two writers in one epoch";
  printf config
    "\n  (%s profile, %d trees, tau = %d, quorum 2/3, primary killed at %d adds,\n\
    \   storm: %d rounds, %d chaos points, %d failovers)\n"
    profile.Profiles.name n tau preload storm.Faults.storm_rounds
    storm.Faults.chaos_points storm.Faults.failovers;
  Table.print ~out:config.out
    ~header:[ "metric"; "value" ]
    ~align:[ Table.Left; Table.Right ]
    [
      [ "quorum-acked ADD rate (healthy)"; Printf.sprintf "%.0f add/s" pre_rps ];
      [ "failover latency (abort -> acked ADD)";
        Printf.sprintf "%.1f ms" (failover_latency *. 1000.0) ];
      [ "quorum-acked ADD rate (post-failover)"; Printf.sprintf "%.0f add/s" post_rps ];
      [ "survivors vs unfailed reference";
        (if survivors_identical then "bit-identical" else "NO") ];
      [ "storm acked ADDs lost";
        (if storm.Faults.acked_preserved then "0" else "SOME") ];
      [ "storm writers per epoch"; (if storm.Faults.single_writer then "1" else ">1") ];
      [ "storm acked / failed ADDs";
        Printf.sprintf "%d / %d" storm.Faults.acked_adds storm.Faults.failed_adds ];
      [ "binary-protocol storm acked ADDs lost";
        (if bin_acked_preserved then "0" else "SOME") ];
      [ "binary-protocol storm writers per epoch";
        (if bin_single_writer then "1" else ">1") ];
    ];
  let oc = open_out "BENCH_replication.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"tsj_replication\",\n\
    \  \"dataset\": \"%s\",\n\
    \  \"n_trees\": %d,\n\
    \  \"tau\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"domains\": %d,\n\
    \  \"quorum\": 2,\n\
    \  \"replicas\": 3,\n\
    \  \"pre_failover_add_rps\": %.1f,\n\
    \  \"failover_latency_ms\": %.2f,\n\
    \  \"post_failover_add_rps\": %.1f,\n\
    \  \"survivors_identical\": %b,\n\
    \  \"storm_rounds\": %d,\n\
    \  \"storm_chaos_points\": %d,\n\
    \  \"storm_failovers\": %d,\n\
    \  \"storm_acked_adds\": %d,\n\
    \  \"storm_acked_preserved\": %b,\n\
    \  \"storm_single_writer\": %b,\n\
    \  \"storm_converged\": %b,\n\
    \  \"storm_answers_match\": %b,\n\
    \  \"binary_storm_acked_preserved\": %b,\n\
    \  \"binary_storm_single_writer\": %b\n\
     }\n"
    profile.Profiles.name n tau config.seed config.domains pre_rps
    (failover_latency *. 1000.0)
    post_rps survivors_identical storm.Faults.storm_rounds storm.Faults.chaos_points
    storm.Faults.failovers storm.Faults.acked_adds storm.Faults.acked_preserved
    storm.Faults.single_writer storm.Faults.converged
    storm.Faults.cluster_answers_match bin_acked_preserved bin_single_writer;
  close_out oc;
  printf config "  wrote BENCH_replication.json\n";
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
      end
      else try Sys.remove path with Sys_error _ -> ()
  in
  rm tmp

let sharding config =
  Table.heading ~out:config.out
    "Extension — sharded serving (band-key routing, scatter-gather degradation, \
     journal-streaming migration)";
  let module Server = Tsj_server.Server in
  let module Store = Tsj_server.Store in
  let module Protocol = Tsj_server.Protocol in
  let module Shard = Tsj_server.Shard in
  let module Router = Tsj_server.Router in
  let fail msg = failwith ("Experiments.sharding: " ^ msg) in
  let ok_or_fail = function Ok v -> v | Error msg -> fail msg in
  let profile = Profiles.swissprot in
  let n = max 48 (int_of_float (240.0 *. config.scale)) in
  let trees = Profiles.instantiate profile ~seed:config.seed ~n in
  let tau = 2 in
  let shards = 8 in
  let tmp = Filename.temp_file "tsj_shard" "" in
  Sys.remove tmp;
  Unix.mkdir tmp 0o755;
  let addr i = Protocol.Unix_path (Filename.concat tmp (Printf.sprintf "sock%d" i)) in
  let dir i = Filename.concat tmp (Printf.sprintf "store%d" i) in
  let mk ?(primary = true) ?(sync_from = []) i =
    let config' =
      { (Server.default_config (addr i) ~tau) with
        Server.dir = Some (dir i);
        domains = config.domains;
        sync_from;
        primary;
      }
    in
    let server = ok_or_fail (Server.create config') in
    Server.start server;
    server
  in
  let servers = Array.init shards (fun i -> mk i) in
  let map = Shard.create ~shards ~tau () in
  let router =
    ok_or_fail
      (Router.create
         {
           Router.map;
           tau;
           groups = Array.init shards (fun i -> [ addr i ]);
           timeout_s = 2.0;
           attempts = 3;
           ledger = Some (Filename.concat tmp "router.ledger");
           seed = config.seed;
           hedge_s = None;
           margin_ms = 0;
         })
  in
  (* phase 1: load through the router — every ADD is a single-shard
     write; gids come back dense *)
  let (), add_wall =
    Tsj_util.Timer.wall (fun () ->
        Array.iteri
          (fun i tree ->
            let gid, _ = ok_or_fail (Router.add router tree) in
            if gid <> i then fail (Printf.sprintf "gid %d for add %d" gid i))
          trees)
  in
  let add_rps = float_of_int n /. Float.max 1e-9 add_wall in
  let residents = Array.make shards 0 in
  for gid = 0 to n - 1 do
    match Router.locate router gid with
    | Some (s, _, _) -> residents.(s) <- residents.(s) + 1
    | None -> fail (Printf.sprintf "gid %d unbound" gid)
  done;
  (* phase 2: reads — the band window bounds the scatter to a constant
     shard subset; answers must be bit-identical to one unsharded store *)
  let reference = ok_or_fail (Store.open_ ~domains:config.domains ~tau ()) in
  Array.iter (fun tree -> ignore (Store.add reference tree)) trees;
  let nq = min 8 n in
  let queries = Array.init nq (fun k -> trees.(k * (n / nq))) in
  let touched = ref 0 and scanned = ref 0 in
  Array.iter
    (fun q ->
      let window = Shard.shards_for map ~tau (Tsj_tree.Tree.size q) in
      touched := !touched + List.length window;
      List.iter (fun s -> scanned := !scanned + residents.(s)) window)
    queries;
  let avg_shards_touched = float_of_int !touched /. float_of_int nq in
  let scan_fraction = float_of_int !scanned /. float_of_int (nq * n) in
  let check_identical label =
    Array.iter
      (fun q ->
        let m = Router.query router ~tau q in
        let r = Store.query reference q in
        if m.Router.a_degraded || m.Router.a_hits <> r.Tsj_core.Incremental.hits then
          fail (label ^ ": sharded answer differs from the unsharded reference");
        let mk = Router.knn router ~k:3 q in
        if mk.Router.a_hits <> Store.nearest ~k:3 reference q then
          fail (label ^ ": sharded knn differs from the unsharded reference"))
      queries
  in
  let (), unsharded_wall =
    Tsj_util.Timer.wall (fun () ->
        Array.iter (fun q -> ignore (Store.query reference q)) queries)
  in
  let (), sharded_wall =
    Tsj_util.Timer.wall (fun () ->
        Array.iter (fun q -> ignore (Router.query router ~tau q)) queries)
  in
  check_identical "healthy";
  (* phase 3: migrate the fullest shard to a fresh node by journal
     streaming (SYNC from 0), then re-check bit-identity *)
  let victim = ref 0 in
  Array.iteri (fun s c -> if c > residents.(!victim) then victim := s) residents;
  let target = mk ~primary:false ~sync_from:[ addr !victim ] shards in
  ok_or_fail (Router.migrate router ~shard:!victim ~target:[ addr shards ]);
  check_identical "post-migration";
  (try Server.drain servers.(!victim) with _ -> ());
  (try Server.wait servers.(!victim) with _ -> ());
  check_identical "post-migration, source retired";
  (* phase 4: kill a shard outright — queries whose window includes it
     must degrade soundly (sandwiches covering every true hit), not fail *)
  let second = ref (if !victim = 0 then 1 else 0) in
  Array.iteri
    (fun s c -> if s <> !victim && c > residents.(!second) then second := s)
    residents;
  Server.abort servers.(!second);
  Server.wait servers.(!second);
  let degraded_count = ref 0 in
  let degraded_sound =
    Array.for_all
      (fun q ->
        let m = Router.query router ~tau q in
        let truth = (Store.query reference q).Tsj_core.Incremental.hits in
        if m.Router.a_degraded then incr degraded_count;
        List.for_all
          (fun (gid, d) ->
            List.mem (gid, d) m.Router.a_hits
            || List.exists
                 (fun (g, lo, hi) -> g = gid && lo <= d && d <= hi)
                 m.Router.a_unverified)
          truth
        && List.for_all (fun h -> List.mem h truth) m.Router.a_hits)
      queries
  in
  if not degraded_sound then fail "a degraded answer lost or invented a hit";
  Store.close reference;
  (* phase 5: the sharded kill/partition/migration storm, in process *)
  let storm_trees = Array.sub trees 0 (min 24 n) in
  let storm =
    Faults.run_sharded_storm ~domains:config.domains ~seed:config.seed ~rounds:32
      ~shards:3 ~trees:storm_trees
      ~queries:(Array.sub storm_trees 0 (min 4 (Array.length storm_trees)))
      ~tau ()
  in
  if not storm.Faults.sh_acked_preserved then fail "storm lost an acknowledged ADD";
  if not storm.Faults.sh_single_writer then
    fail "storm saw two writers in one epoch on one shard";
  if not storm.Faults.sh_degraded_sound then fail "storm served an unsound degraded answer";
  if not (storm.Faults.sh_converged && storm.Faults.sh_answers_match) then
    fail "storm cluster did not converge to the unsharded reference";
  let row label value = [ label; value ] in
  Table.print ~out:config.out
    ~header:[ "sharded serving"; "value" ]
    ~align:[ Table.Left; Table.Right ]
    [
      row "shards x trees" (Printf.sprintf "%d x %d" shards n);
      row "band width (2tau+1)" (string_of_int map.Shard.band);
      row "add throughput" (Printf.sprintf "%.0f add/s" add_rps);
      row "avg shards touched per query"
        (Printf.sprintf "%.2f of %d" avg_shards_touched shards);
      row "scan fraction vs unsharded" (Printf.sprintf "%.3f" scan_fraction);
      row "query latency (unsharded lib)"
        (Printf.sprintf "%.2f ms" (1000.0 *. unsharded_wall /. float_of_int nq));
      row "query latency (router, wire)"
        (Printf.sprintf "%.2f ms" (1000.0 *. sharded_wall /. float_of_int nq));
      row "migration (journal streaming)" "ok";
      row "degraded answers (1 shard down)"
        (Printf.sprintf "%d/%d sound" !degraded_count nq);
      row "storm"
        (Printf.sprintf "%d rounds, %d acked, %d migrations, all invariants held"
           storm.Faults.sh_rounds storm.Faults.sh_acked_adds storm.Faults.sh_migrations);
    ];
  let oc = open_out "BENCH_sharding.json" in
  Printf.fprintf oc
    "{\n\
    \  \"dataset\": \"%s\",\n\
    \  \"n_trees\": %d,\n\
    \  \"tau\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"domains\": %d,\n\
    \  \"shards\": %d,\n\
    \  \"band\": %d,\n\
    \  \"add_rps\": %.1f,\n\
    \  \"avg_shards_touched\": %.3f,\n\
    \  \"scan_fraction\": %.4f,\n\
    \  \"unsharded_query_ms\": %.3f,\n\
    \  \"sharded_query_ms\": %.3f,\n\
    \  \"migration_ok\": true,\n\
    \  \"degraded_sound\": %b,\n\
    \  \"storm_rounds\": %d,\n\
    \  \"storm_shards\": %d,\n\
    \  \"storm_acked_adds\": %d,\n\
    \  \"storm_failovers\": %d,\n\
    \  \"storm_migrations\": %d,\n\
    \  \"storm_acked_preserved\": %b,\n\
    \  \"storm_single_writer\": %b,\n\
    \  \"storm_converged\": %b,\n\
    \  \"storm_degraded_sound\": %b,\n\
    \  \"storm_answers_match\": %b\n\
     }\n"
    profile.Profiles.name n tau config.seed config.domains shards map.Shard.band add_rps
    avg_shards_touched scan_fraction
    (1000.0 *. unsharded_wall /. float_of_int nq)
    (1000.0 *. sharded_wall /. float_of_int nq)
    degraded_sound storm.Faults.sh_rounds storm.Faults.sh_shards
    storm.Faults.sh_acked_adds storm.Faults.sh_failovers storm.Faults.sh_migrations
    storm.Faults.sh_acked_preserved storm.Faults.sh_single_writer
    storm.Faults.sh_converged storm.Faults.sh_degraded_sound
    storm.Faults.sh_answers_match;
  close_out oc;
  printf config "  wrote BENCH_sharding.json\n";
  Router.close router;
  Array.iteri
    (fun i s ->
      if i <> !second && i <> !victim then begin
        (try Server.drain s with _ -> ());
        try Server.wait s with _ -> ()
      end)
    servers;
  (try Server.drain target with _ -> ());
  (try Server.wait target with _ -> ());
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
      end
      else try Sys.remove path with Sys_error _ -> ()
  in
  rm tmp

(* --- integrity: scrub overhead under load, bit-rot storm, Merkle
   anti-entropy frugality --- *)

let integrity config =
  Table.heading ~out:config.out
    "Extension — end-to-end integrity (background scrub, Merkle anti-entropy, \
     self-healing repair)";
  let module Server = Tsj_server.Server in
  let module Store = Tsj_server.Store in
  let module Client = Tsj_server.Client in
  let module Protocol = Tsj_server.Protocol in
  let profile = Profiles.swissprot in
  let n = max 24 (int_of_float (240.0 *. config.scale)) in
  let trees = Profiles.instantiate profile ~seed:config.seed ~n in
  let tau = 2 in
  let fail msg = failwith ("Experiments.integrity: " ^ msg) in
  let ok_or_fail = function Ok v -> v | Error msg -> fail msg in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
      end
      else try Sys.remove path with Sys_error _ -> ()
  in
  (* Phase 1 — scrub overhead: the soak workload (pipelined binary
     queries over fixed connections) against the same preloaded server,
     once with the scrubber off and once with it re-verifying the
     whole journal about four times a second (250 ms ticks, budget
     covering every record — far hotter than a production cadence of
     tens of seconds, yet the overhead bound must still hold). *)
  let rung_s = 10.0 *. min 1.0 config.scale in
  let conns = 4 in
  let window = 16 in
  let run_soak ~scrub =
    let tmp = Filename.temp_file "tsj_integrity" "" in
    Sys.remove tmp;
    Unix.mkdir tmp 0o755;
    let addr = Protocol.Unix_path (Filename.concat tmp "sock") in
    let server =
      ok_or_fail
        (Server.create
           { (Server.default_config addr ~tau) with
             Server.dir = Some (Filename.concat tmp "store");
             domains = config.domains;
             max_inflight = 1024;
             deadline_s = Some 0.5;
             scrub_interval_s = (if scrub then Some 0.25 else None);
             scrub_budget = 256;
           })
    in
    let store = Server.store server in
    Array.iter (fun t -> ignore (Store.add store t)) trees;
    Server.start server;
    let worker c conn =
      let rng = Tsj_util.Prng.create (config.seed + 900 + c) in
      let pending = Hashtbl.create (2 * window) in
      let sent = ref 0 and bad = ref 0 in
      let deadline = Tsj_util.Timer.now () +. rung_s in
      let live () = Tsj_util.Timer.now () < deadline in
      while live () || Hashtbl.length pending > 0 do
        while live () && Hashtbl.length pending < window do
          let req =
            Protocol.Query { tau = 0; tree = trees.(Tsj_util.Prng.int rng n) }
          in
          Hashtbl.replace pending (Client.Bin.send conn req) ();
          incr sent
        done;
        Client.Bin.flush conn;
        if Hashtbl.length pending > 0 then
          match Client.Bin.recv conn with
          | Error msg -> failwith ("integrity soak recv: " ^ msg)
          | Ok (id, resp) ->
            Hashtbl.remove pending id;
            (match resp with Protocol.Hits _ -> () | _ -> incr bad)
      done;
      Client.Bin.close conn;
      (!sent, !bad)
    in
    let sockets = Array.init conns (fun _ -> ok_or_fail (Client.Bin.connect addr)) in
    let results, wall =
      Tsj_util.Timer.wall (fun () ->
          Array.mapi (fun c conn -> Domain.spawn (fun () -> worker c conn)) sockets
          |> Array.map Domain.join)
    in
    let sent = Array.fold_left (fun acc (s, _) -> acc + s) 0 results in
    let bad = Array.fold_left (fun acc (_, b) -> acc + b) 0 results in
    if bad > 0 then fail (Printf.sprintf "%d soak replies were BUSY/ERR" bad);
    let stats =
      let conn = ok_or_fail (Client.connect addr) in
      let s =
        match Client.request conn Protocol.Stats with
        | Ok (Protocol.Stats_reply s) -> s
        | Ok _ | Error _ -> fail "STATS request failed"
      in
      (match Client.request conn Protocol.Drain with
      | Ok Protocol.Drained -> ()
      | Ok _ | Error _ -> fail "DRAIN request failed");
      Client.close conn;
      s
    in
    Server.wait server;
    rm tmp;
    (float_of_int sent /. wall, stats)
  in
  let rps_off, _ = run_soak ~scrub:false in
  let rps_on, stats_on = run_soak ~scrub:true in
  if stats_on.Protocol.scrubbed = 0 then
    fail "the background scrubber never ran during the scrub-on soak";
  if stats_on.Protocol.crc_failures > 0 then
    fail "scrub reported corruption on a healthy store";
  let overhead_pct = 100.0 *. (rps_off -. rps_on) /. rps_off in
  (* The < 5% bound only means something once the rungs are long enough
     to average out scheduler noise. *)
  if config.scale >= 1.0 && overhead_pct >= 5.0 then
    fail
      (Printf.sprintf "background scrub costs %.1f%% of soak throughput (>= 5%%)"
         overhead_pct);
  (* Phase 2 — full-pass scrub cost offline: re-verify every record,
     the epoch header and both seals on a store nobody is querying. *)
  let scrub_pass_ms =
    let tmp = Filename.temp_file "tsj_integrity" "" in
    Sys.remove tmp;
    Unix.mkdir tmp 0o755;
    let store = ok_or_fail (Store.open_ ~dir:tmp ~tau ()) in
    Array.iter (fun t -> ignore (Store.add store t)) trees;
    let budget = n + 1 in
    let (), wall =
      Tsj_util.Timer.wall (fun () ->
          let a = Store.scrub_step ~budget store in
          let b = Store.scrub_step ~budget store in
          if a.Store.sc_findings <> [] || b.Store.sc_findings <> [] then
            fail "offline scrub found corruption on a healthy store")
    in
    Store.close store;
    rm tmp;
    1000.0 *. wall
  in
  (* Phase 3 — the bit-rot storm: random bit flips in live files,
     mid-journal rot before restarts, grafted divergence, injected read
     faults; every corruption must be detected, answers never wrong,
     anti-entropy must move only the differing ranges. *)
  let storm =
    let storm_trees = Profiles.instantiate profile ~seed:(config.seed + 31) ~n:24 in
    Faults.run_scrub_storm ~domains:config.domains ~seed:config.seed ~rounds:30
      ~trees:storm_trees
      ~queries:(Array.sub storm_trees 0 8)
      ~tau ()
  in
  if not storm.Faults.sb_all_detected then
    fail
      (Printf.sprintf "scrub storm: %d of %d injected corruptions went undetected"
         (storm.Faults.sb_flips + storm.Faults.sb_read_faults - storm.Faults.sb_detected)
         (storm.Faults.sb_flips + storm.Faults.sb_read_faults));
  if storm.Faults.sb_wrong_answers > 0 then
    fail (Printf.sprintf "scrub storm: %d wrong answers" storm.Faults.sb_wrong_answers);
  if not storm.Faults.sb_converged then fail "scrub storm: stores did not converge";
  if not storm.Faults.sb_transfer_frugal then
    fail
      (Printf.sprintf
         "scrub storm: anti-entropy moved %d records (expected %d, full re-syncs \
          would move %d)"
         storm.Faults.sb_transferred storm.Faults.sb_transfer_expected
         storm.Faults.sb_full_resync_cost);
  printf config
    "\n  (%s profile, %d trees preloaded, tau = %d; %.0f s per soak rung, %d \
     connections, window %d)\n"
    profile.Profiles.name n tau rung_s conns window;
  Table.print ~out:config.out
    ~header:[ "metric"; "value" ]
    ~align:[ Table.Left; Table.Right ]
    [
      [ "soak throughput, scrub off"; Printf.sprintf "%.0f req/s" rps_off ];
      [ "soak throughput, scrub on (250 ms ticks)"; Printf.sprintf "%.0f req/s" rps_on ];
      [ "scrub overhead"; Printf.sprintf "%.1f %%" overhead_pct ];
      [ "records scrubbed during soak"; string_of_int stats_on.Protocol.scrubbed ];
      [ "full scrub pass (offline)"; Printf.sprintf "%.1f ms" scrub_pass_ms ];
      [ "storm rounds"; string_of_int storm.Faults.sb_rounds ];
      [ "storm bit flips / read faults";
        Printf.sprintf "%d / %d" storm.Faults.sb_flips storm.Faults.sb_read_faults ];
      [ "storm corruptions detected";
        Printf.sprintf "%d (all: %b)" storm.Faults.sb_detected storm.Faults.sb_all_detected ];
      [ "storm scrub repairs / healed / quarantined";
        Printf.sprintf "%d / %d / %d" storm.Faults.sb_scrub_repairs storm.Faults.sb_healed
          storm.Faults.sb_quarantined ];
      [ "anti-entropy records transferred";
        Printf.sprintf "%d (minimum %d, full re-sync %d)" storm.Faults.sb_transferred
          storm.Faults.sb_transfer_expected storm.Faults.sb_full_resync_cost ];
      [ "storm wrong answers"; string_of_int storm.Faults.sb_wrong_answers ];
      [ "storm converged"; string_of_bool storm.Faults.sb_converged ];
    ];
  let oc = open_out "BENCH_integrity.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"tsj_integrity\",\n\
    \  \"dataset\": \"%s\",\n\
    \  \"preloaded\": %d,\n\
    \  \"tau\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"rung_seconds\": %.1f,\n\
    \  \"connections\": %d,\n\
    \  \"throughput_scrub_off_rps\": %.1f,\n\
    \  \"throughput_scrub_on_rps\": %.1f,\n\
    \  \"scrub_overhead_pct\": %.2f,\n\
    \  \"scrubbed_during_soak\": %d,\n\
    \  \"full_scrub_pass_ms\": %.2f,\n\
    \  \"storm_rounds\": %d,\n\
    \  \"storm_flips\": %d,\n\
    \  \"storm_read_faults\": %d,\n\
    \  \"storm_detected\": %d,\n\
    \  \"storm_all_detected\": %b,\n\
    \  \"storm_scrub_repairs\": %d,\n\
    \  \"storm_healed\": %d,\n\
    \  \"storm_quarantined\": %d,\n\
    \  \"storm_divergences\": %d,\n\
    \  \"storm_transferred\": %d,\n\
    \  \"storm_transfer_expected\": %d,\n\
    \  \"storm_full_resync_cost\": %d,\n\
    \  \"storm_transfer_frugal\": %b,\n\
    \  \"storm_wrong_answers\": %d,\n\
    \  \"storm_converged\": %b\n\
     }\n"
    profile.Profiles.name n tau config.seed rung_s conns rps_off rps_on overhead_pct
    stats_on.Protocol.scrubbed scrub_pass_ms storm.Faults.sb_rounds storm.Faults.sb_flips
    storm.Faults.sb_read_faults storm.Faults.sb_detected storm.Faults.sb_all_detected
    storm.Faults.sb_scrub_repairs storm.Faults.sb_healed storm.Faults.sb_quarantined
    storm.Faults.sb_divergences storm.Faults.sb_transferred
    storm.Faults.sb_transfer_expected storm.Faults.sb_full_resync_cost
    storm.Faults.sb_transfer_frugal storm.Faults.sb_wrong_answers
    storm.Faults.sb_converged;
  close_out oc;
  printf config "  wrote BENCH_integrity.json\n"

let run_all config =
  fig10_11 config;
  fig12_13 config;
  fig14 config;
  ablation config;
  parallel config;
  perf config;
  dag config;
  streaming config;
  resilience config;
  serving config;
  overload config;
  replication config;
  sharding config;
  integrity config
