type t = Nl | Str | Set | Prt | Prt_random | Prt_paper_index

let name = function
  | Nl -> "NL"
  | Str -> "STR"
  | Set -> "SET"
  | Prt -> "PRT"
  | Prt_random -> "PRT-random"
  | Prt_paper_index -> "PRT-paper"

let all = [ Nl; Str; Set; Prt; Prt_random; Prt_paper_index ]

let paper_methods = [ Str; Set; Prt ]

let of_name s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun m -> String.lowercase_ascii (name m) = s) all

let supports_resilience = function
  | Nl | Str | Set -> false
  | Prt | Prt_random | Prt_paper_index -> true

let run ?(domains = 1) ?budget ?checkpoint ?consing method_ ~trees ~tau =
  match method_ with
  | Nl -> Tsj_join.Nested_loop.join ~trees ~tau ()
  | Str -> Tsj_baselines.Str_join.join ~trees ~tau ()
  | Set -> Tsj_baselines.Set_join.join ~trees ~tau ()
  | Prt -> Tsj_core.Partsj.join ~domains ?budget ?checkpoint ?consing ~trees ~tau ()
  | Prt_random ->
    Tsj_core.Partsj.join ~domains ?budget ?checkpoint ?consing
      ~partitioning:(Tsj_core.Partsj.Random 0xBEEF) ~trees ~tau ()
  | Prt_paper_index ->
    Tsj_core.Partsj.join ~domains ?budget ?checkpoint ?consing
      ~index_mode:Tsj_core.Two_layer_index.Paper_rank ~trees ~tau ()
