module Types = Tsj_join.Types
module Fault = Tsj_util.Fault_inject
module Checkpoint = Tsj_join.Checkpoint
module Budget = Tsj_join.Budget

type kill_report = {
  killed : bool;
  uninterrupted : Types.output;
  resumed : Types.output;
}

let fresh_journal () =
  let path = Filename.temp_file "tsj_ckpt" ".journal" in
  Sys.remove path;
  path

let run_kill_and_resume ?(domains = 1) ?(kill_at_block = 1) ?journal ~trees ~tau () =
  let path = match journal with Some p -> p | None -> fresh_journal () in
  if Sys.file_exists path then Sys.remove path;
  let uninterrupted = Tsj_core.Partsj.join ~domains ~trees ~tau () in
  (* Crash run: the injected raise fires at the top of block
     [kill_at_block], after the previous block's journal entry — the
     worst case a real kill can leave behind. *)
  let killed =
    match
      Fault.with_armed "partsj.block" ~at:kill_at_block (fun () ->
          Tsj_core.Partsj.join ~domains
            ~checkpoint:(Checkpoint.config path)
            ~trees ~tau ())
    with
    | _ -> false (* too few blocks to reach the kill point *)
    | exception Fault.Injected _ -> true
  in
  let resumed =
    Tsj_core.Partsj.join ~domains
      ~checkpoint:(Checkpoint.config ~resume:true path)
      ~trees ~tau ()
  in
  if journal = None && Sys.file_exists path then Sys.remove path;
  { killed; uninterrupted; resumed }

type budget_report = {
  truth : Types.output;
  budgeted : Types.output;
  false_positives : Types.pair list;
  unaccounted : Types.pair list;
}

let quarantined_ids out =
  List.fold_left
    (fun acc q ->
      match q.Types.q_j with
      | None -> (q.Types.q_i, q.Types.q_i) :: acc
      | Some j -> (min q.Types.q_i j, max q.Types.q_i j) :: acc)
    [] out.Types.quarantined

let covered out p =
  let i = min p.Types.i p.Types.j and j = max p.Types.i p.Types.j in
  List.exists
    (fun (a, b) -> (a = b && (a = i || a = j)) || (a = i && b = j))
    (quarantined_ids out)

let run_budgeted ?(domains = 1) ~pair_cost_limit ~trees ~tau () =
  let truth = Tsj_core.Partsj.join ~domains ~trees ~tau () in
  let budget = Budget.create ~pair_cost_limit () in
  let budgeted = Tsj_core.Partsj.join ~domains ~budget ~trees ~tau () in
  let false_positives =
    List.filter (fun p -> not (List.mem p truth.Types.pairs)) budgeted.Types.pairs
  in
  let unaccounted =
    List.filter
      (fun p -> (not (List.mem p budgeted.Types.pairs)) && not (covered budgeted p))
      truth.Types.pairs
  in
  { truth; budgeted; false_positives; unaccounted }

let truncate_file path ~keep_bytes =
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let keep = min keep_bytes (String.length contents) in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub contents 0 keep))

(* --- server store kill-and-restart --- *)

type server_kill_report = {
  server_killed : bool;
  acked : int;
  expected : int;
  replayed : int;
  answers_match : bool;
}

let fresh_store_dir () =
  let path = Filename.temp_file "tsj_store" "" in
  Sys.remove path;
  path

let remove_store_dir dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let store_of_exn = function Ok s -> s | Error msg -> failwith msg

(* The crash-safety scenario of the service ADD path: feed [trees] into
   a journaled {!Tsj_server.Store}, kill it (injected raise at the
   [server.journal] hit point, store abandoned without close — the
   in-memory index is simply lost) at add number [kill_at_add], then
   restart from the on-disk state and compare query answers against a
   reference store fed exactly the acknowledged prefix.

   [tear_tail] additionally chops bytes off the journal's final record
   before the restart — a partial disk write from a crash mid-append.
   The torn record was never acknowledged-durable, so the expected
   surviving prefix shrinks by one. *)
let run_server_kill_and_restart ?(domains = 1) ?(kill_at_add = 1) ?(tear_tail = false)
    ~trees ~queries ~tau () =
  let dir = fresh_store_dir () in
  let acked = ref 0 in
  let server_killed =
    match
      Fault.with_armed "server.journal" ~at:kill_at_add (fun () ->
          let store = store_of_exn (Tsj_server.Store.open_ ~dir ~domains ~tau ()) in
          Array.iter
            (fun t ->
              ignore (Tsj_server.Store.add store t);
              incr acked)
            trees;
          Tsj_server.Store.close store)
    with
    | () -> false (* too few adds to reach the kill point *)
    | exception Fault.Injected _ -> true
  in
  let torn =
    if tear_tail && server_killed && !acked > 0 then begin
      let journal = Filename.concat dir "journal" in
      let len = (Unix.stat journal).Unix.st_size in
      (* Losing the trailing newline plus two checksum characters makes
         the final record undecodable — a torn tail, not mid-file
         corruption. *)
      truncate_file journal ~keep_bytes:(max 0 (len - 3));
      true
    end
    else false
  in
  let expected = if torn then !acked - 1 else !acked in
  let replayed_store = store_of_exn (Tsj_server.Store.open_ ~dir ~domains ~tau ()) in
  let reference = store_of_exn (Tsj_server.Store.open_ ~domains ~tau ()) in
  for i = 0 to expected - 1 do
    ignore (Tsj_server.Store.add reference trees.(i))
  done;
  let answers_match =
    Tsj_server.Store.n_trees replayed_store = expected
    && Array.for_all
         (fun q ->
           let a = Tsj_server.Store.query replayed_store q in
           let b = Tsj_server.Store.query reference q in
           a.Tsj_core.Incremental.hits = b.Tsj_core.Incremental.hits
           && (not a.degraded) && (not b.degraded))
         queries
  in
  let replayed = Tsj_server.Store.n_trees replayed_store in
  Tsj_server.Store.close replayed_store;
  remove_store_dir dir;
  { server_killed; acked = !acked; expected; replayed; answers_match }

(* --- replicated-cluster failover storm --- *)

module Sstore = Tsj_server.Store
module Replica = Tsj_server.Replica
module Cluster = Tsj_server.Cluster
module Sproto = Tsj_server.Protocol
module Prng = Tsj_util.Prng

type failover_report = {
  storm_rounds : int;
  chaos_points : int;
  acked_adds : int;
  failed_adds : int;
  failovers : int;
  final_epoch : int;
  acked_preserved : bool;
  single_writer : bool;
  converged : bool;
  cluster_answers_match : bool;
}

type storm_node = {
  sn_idx : int;
  sn_dir : string;
  mutable sn_store : Sstore.t;
  mutable sn_replica : Replica.t;
  mutable sn_cluster : Cluster.t;
  mutable sn_dead : bool;
  mutable sn_partitioned : bool;
  mutable sn_stream_gen : int;
      (* bumped whenever the node (re)starts a replication stream; links
         created under an older generation fail like a closed socket *)
}

(* A three-node cluster driven entirely in process: real journaled
   stores in temp directories, the real {!Replica}/{!Cluster} state
   machines, and an in-memory transport whose send and recv legs both
   check for partitions — so a record can be durably applied on the
   follower while its ack is lost, the ambiguous half of every
   replication protocol.

   The driver plays both the client (safe-retry ADDs with a sticky
   sequence number) and the operator (heal partitions, restart crashed
   nodes as followers, promote the reachable node with the highest
   (epoch, n_trees) when the primary is gone).  One chaos event fires
   per round against an otherwise healed cluster — quorum 2-of-3
   tolerates exactly one failure, so that is the envelope worth
   asserting in. *)
let run_failover_storm ?(domains = 1) ?(seed = 0xC1A05) ?(rounds = 40) ?(quorum = 2)
    ~trees ~queries ~tau () =
  let rng = Prng.create seed in
  let restart_store dir = store_of_exn (Sstore.open_ ~dir ~domains ~tau ()) in
  let fresh_node idx =
    let dir = fresh_store_dir () in
    let store = restart_store dir in
    {
      sn_idx = idx;
      sn_dir = dir;
      sn_store = store;
      sn_replica = Replica.create ~primary:(idx = 0) store;
      sn_cluster = Cluster.create ~quorum ();
      sn_dead = false;
      sn_partitioned = false;
      sn_stream_gen = 0;
    }
  in
  let nodes = Array.init 3 fresh_node in
  let chaos_points = ref 0
  and acked : (int * Tsj_tree.Tree.t) list ref = ref []
  and acked_adds = ref 0
  and failed_adds = ref 0
  and failovers = ref 0
  and single_writer = ref true
  and current_feeding = ref (-1) in
  let writers : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let record_writer node =
    let e = Sstore.epoch node.sn_store in
    match Hashtbl.find_opt writers e with
    | None -> Hashtbl.add writers e node.sn_idx
    | Some w -> if w <> node.sn_idx then single_writer := false
  in
  let record_for node s = Sstore.record_for node.sn_store s in
  (* The transport: [send] delivers a pushed line straight into the
     follower's {!Replica.feed} and stashes the reaction; [recv] hands
     it back.  Both legs fail when either endpoint is dead or
     partitioned — a partition hit on the recv leg loses an ack the
     follower already made durable. *)
  let link pnode fnode =
    let gen = fnode.sn_stream_gen in
    let pending = ref None in
    let check leg =
      if
        pnode.sn_dead || fnode.sn_dead || pnode.sn_partitioned || fnode.sn_partitioned
        || fnode.sn_stream_gen <> gen
      then failwith ("replication link down (" ^ leg ^ ")")
    in
    let send line =
      check "send";
      current_feeding := fnode.sn_idx;
      let reaction =
        Fun.protect
          ~finally:(fun () -> current_feeding := -1)
          (fun () -> Replica.feed fnode.sn_replica line)
      in
      match reaction with
      | Replica.Reply r | Replica.Final r -> pending := Some r
      | Replica.Stop reason -> failwith ("stream stopped: " ^ reason)
    in
    let recv () =
      check "recv";
      match !pending with
      | Some r ->
        pending := None;
        r
      | None -> failwith "no reply pending"
    in
    (send, recv, fun () -> ())
  in
  (* Re-attach [fnode] as a follower of [pnode]: the follower's [SYNC]
     hello, the primary's {!Cluster.serve_sync} handshake, catch-up and
     registration — exactly the server's wire path, minus the socket. *)
  let resync pnode fnode =
    if
      fnode == pnode || fnode.sn_dead || fnode.sn_partitioned || pnode.sn_dead
      || pnode.sn_partitioned
    then false
    else begin
      if Replica.is_primary fnode.sn_replica then Replica.demote fnode.sn_replica;
      fnode.sn_stream_gen <- fnode.sn_stream_gen + 1;
      match Sproto.parse_request (Replica.hello fnode.sn_replica) with
      | Ok (Sproto.Sync { epoch = f_epoch; from_seq = _ }) -> (
        let send, recv, close = link pnode fnode in
        match
          Cluster.serve_sync pnode.sn_cluster
            ~epoch:(fun () -> Sstore.epoch pnode.sn_store)
            ~base:(fun () -> Sstore.epoch_base pnode.sn_store)
            ~n_trees:(fun () -> Sstore.n_trees pnode.sn_store)
            ~record_for:(record_for pnode)
            ~primary:(fun () -> Replica.is_primary pnode.sn_replica)
            ~peer_id:(Printf.sprintf "node-%d" fnode.sn_idx)
            ~f_epoch ~send ~recv ~close
        with
        | `Streaming -> true
        | `Fenced _ | `Refused _ -> false)
      | _ -> false
    end
  in
  (* Of the nodes still claiming the mandate, the one at the highest
     epoch is the real primary — a healed stale claimant sorts below it
     and is demoted when it re-syncs. *)
  let current_primary () =
    let best = ref None in
    Array.iter
      (fun node ->
        if (not node.sn_dead) && Replica.is_primary node.sn_replica then
          match !best with
          | Some b when Sstore.epoch b.sn_store >= Sstore.epoch node.sn_store -> ()
          | _ -> best := Some node)
      nodes;
    !best
  in
  let reachable_primary () =
    match current_primary () with
    | Some p when not p.sn_partitioned -> Some p
    | _ -> None
  in
  (* The operator's promotion rule: the reachable node with the highest
     (epoch, n_trees).  The stream is sequential, so among same-epoch
     nodes the longest one holds a superset — in particular every add
     that ever reached quorum. *)
  let failover () =
    let best = ref None in
    Array.iter
      (fun node ->
        if (not node.sn_dead) && not node.sn_partitioned then begin
          let key = (Sstore.epoch node.sn_store, Sstore.n_trees node.sn_store) in
          match !best with
          | Some (k, _) when k >= key -> ()
          | _ -> best := Some (key, node)
        end)
      nodes;
    match !best with
    | None -> None
    | Some (_, node) ->
      if not (Replica.is_primary node.sn_replica) then begin
        ignore (Replica.promote node.sn_replica);
        node.sn_cluster <- Cluster.create ~quorum ();
        Cluster.set_acked_high node.sn_cluster (Sstore.n_trees node.sn_store);
        incr failovers
      end;
      Some node
  in
  let recover () =
    match failover () with
    | None -> false
    | Some p ->
      Array.iter (fun node -> if node != p then ignore (resync p node)) nodes;
      true
  in
  let restart node =
    node.sn_dead <- false;
    node.sn_partitioned <- false;
    node.sn_stream_gen <- node.sn_stream_gen + 1;
    (* kill -9 semantics: the old store object is abandoned unflushed;
       recovery must come from the journal alone *)
    let store = restart_store node.sn_dir in
    node.sn_store <- store;
    node.sn_replica <- Replica.create ~primary:false store;
    node.sn_cluster <- Cluster.create ~quorum ();
    Cluster.set_acked_high node.sn_cluster (Sstore.n_trees store)
  in
  let heal_and_stabilise () =
    Array.iter (fun node -> node.sn_partitioned <- false) nodes;
    Array.iter (fun node -> if node.sn_dead then restart node) nodes;
    let p =
      match current_primary () with
      | Some p -> p
      | None -> (
        match failover () with
        | Some p -> p
        | None -> failwith "storm: no promotable node")
    in
    Array.iter (fun node -> if node != p then ignore (resync p node)) nodes;
    p
  in
  (* The server's execute path for a replicated ADD, verbatim: local
     journaled add and quorum replication under one write lock, dup
     acks below the acked high-water mark, demotion on FENCED. *)
  let do_add node ~seq tree =
    Cluster.with_write node.sn_cluster (fun () ->
        match Sstore.add_seq node.sn_store ~seq tree with
        | Error reason -> `Err reason
        | Ok (id, _partners) ->
          if id + 1 <= Cluster.acked_high node.sn_cluster then `Acked_dup
          else (
            match Cluster.replicate node.sn_cluster ~record_for:(record_for node) ~seq:id with
            | Cluster.Acks _ -> `Acked
            | Cluster.No_quorum _ -> `No_quorum
            | Cluster.Fenced_off e ->
              Replica.demote node.sn_replica;
              `Fenced_off e))
  in
  (* The client's safe-retry ADD: learn a sequence number once, then
     retry with the {e same} seq across failures and failovers — the
     idempotency contract.  An ack computed by a node that died before
     answering is treated as lost (the ambiguous case); the retry
     resolves it via the new primary's dup ack. *)
  let client_add tree =
    let rec go attempts seq_opt =
      if attempts <= 0 then begin
        incr failed_adds;
        false
      end
      else
        match reachable_primary () with
        | None ->
          ignore (recover ());
          go (attempts - 1) seq_opt
        | Some node -> (
          let seq =
            match seq_opt with Some s -> s | None -> Sstore.n_trees node.sn_store
          in
          let outcome = do_add node ~seq tree in
          let ack_delivered = (not node.sn_dead) && not node.sn_partitioned in
          match outcome with
          | (`Acked | `Acked_dup) when ack_delivered ->
            (match outcome with `Acked -> record_writer node | _ -> ());
            acked := (seq, tree) :: !acked;
            incr acked_adds;
            true
          | `Acked | `Acked_dup | `No_quorum | `Fenced_off _ ->
            go (attempts - 1) (Some seq)
          | `Err _ -> go (attempts - 1) None)
    in
    go 8 None
  in
  (* One chaos event per round, against an otherwise healed cluster. *)
  let inject_chaos () =
    match current_primary () with
    | None -> ()
    | Some p ->
      let followers =
        Array.to_list nodes |> List.filter (fun x -> x != p && not x.sn_dead)
      in
      let pick_follower () = List.nth followers (Prng.int rng (List.length followers)) in
      incr chaos_points;
      let one_shot body =
        let fired = ref false in
        fun payload ->
          if not !fired then begin
            match body payload with
            | `Skip -> ()
            | `Fire key ->
              fired := true;
              raise (Fault.Injected key)
          end
      in
      (match Prng.int rng 6 with
      | 0 -> (pick_follower ()).sn_partitioned <- true
      | 1 -> p.sn_partitioned <- true
      | 2 -> p.sn_dead <- true
      | 3 ->
        (* kill the primary mid-quorum: after [k] of its peers have the
           record but before the client is answered *)
        let k = Prng.int rng 2 in
        Fault.arm_action "cluster.partition"
          (one_shot (fun idx ->
               if idx = k then begin
                 p.sn_dead <- true;
                 `Fire "cluster.partition"
               end
               else `Skip))
      | 4 ->
        (* kill a follower just before it applies a pushed record: the
           record is lost there, the primary sees no ack *)
        let f = pick_follower () in
        Fault.arm_action "replica.stream"
          (one_shot (fun _seq ->
               if !current_feeding = f.sn_idx then begin
                 f.sn_dead <- true;
                 `Fire "replica.stream"
               end
               else `Skip))
      | _ ->
        (* kill a follower after the durable apply but before the ack —
           the ambiguous case: durable yet unacknowledged *)
        let f = pick_follower () in
        Fault.arm_action "replica.ack"
          (one_shot (fun _seq ->
               if !current_feeding = f.sn_idx then begin
                 f.sn_dead <- true;
                 `Fire "replica.ack"
               end
               else `Skip)))
  in
  let cleanup () =
    Fault.disarm_all ();
    Array.iter
      (fun node ->
        (try Sstore.close node.sn_store with _ -> ());
        remove_store_dir node.sn_dir)
      nodes
  in
  Fun.protect ~finally:cleanup (fun () ->
      for _round = 1 to rounds do
        ignore (heal_and_stabilise ());
        inject_chaos ();
        let adds = 1 + Prng.int rng 3 in
        for _ = 1 to adds do
          ignore (client_add (Prng.choice rng trees))
        done;
        Fault.disarm_all ()
      done;
      (* final heal: everyone back, converged, one more acked write *)
      let primary = heal_and_stabilise () in
      for _ = 1 to 3 do
        ignore (client_add (Prng.choice rng trees))
      done;
      Array.iter (fun node -> if node != primary then ignore (resync primary node)) nodes;
      let n = Sstore.n_trees primary.sn_store in
      let tree_str node i = Tsj_tree.Bracket.to_string (Sstore.tree node.sn_store i) in
      let converged =
        Array.for_all
          (fun node ->
            Sstore.n_trees node.sn_store = n
            && Sstore.epoch node.sn_store = Sstore.epoch primary.sn_store
            &&
            let ok = ref true in
            for i = 0 to n - 1 do
              if tree_str node i <> tree_str primary i then ok := false
            done;
            !ok)
          nodes
      in
      let acked_preserved =
        List.for_all
          (fun (seq, tree) ->
            seq < n && tree_str primary seq = Tsj_tree.Bracket.to_string tree)
          !acked
      in
      (* every surviving node must answer bit-identically to a
         single-node store that never failed, fed the same sequence *)
      let reference = store_of_exn (Sstore.open_ ~domains ~tau ()) in
      for i = 0 to n - 1 do
        ignore (Sstore.add reference (Sstore.tree primary.sn_store i))
      done;
      let node_matches node =
        Array.for_all
          (fun q ->
            let a = Sstore.query node.sn_store q in
            let b = Sstore.query reference q in
            a.Tsj_core.Incremental.hits = b.Tsj_core.Incremental.hits
            && (not a.degraded) && not b.degraded)
          queries
      in
      let cluster_answers_match = Array.for_all node_matches nodes in
      {
        storm_rounds = rounds;
        chaos_points = !chaos_points;
        acked_adds = !acked_adds;
        failed_adds = !failed_adds;
        failovers = !failovers;
        final_epoch = Sstore.epoch primary.sn_store;
        acked_preserved;
        single_writer = !single_writer;
        converged;
        cluster_answers_match;
      })
