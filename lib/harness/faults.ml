module Types = Tsj_join.Types
module Fault = Tsj_util.Fault_inject
module Checkpoint = Tsj_join.Checkpoint
module Budget = Tsj_join.Budget

type kill_report = {
  killed : bool;
  uninterrupted : Types.output;
  resumed : Types.output;
}

let fresh_journal () =
  let path = Filename.temp_file "tsj_ckpt" ".journal" in
  Sys.remove path;
  path

let run_kill_and_resume ?(domains = 1) ?(kill_at_block = 1) ?journal ~trees ~tau () =
  let path = match journal with Some p -> p | None -> fresh_journal () in
  if Sys.file_exists path then Sys.remove path;
  let uninterrupted = Tsj_core.Partsj.join ~domains ~trees ~tau () in
  (* Crash run: the injected raise fires at the top of block
     [kill_at_block], after the previous block's journal entry — the
     worst case a real kill can leave behind. *)
  let killed =
    match
      Fault.with_armed "partsj.block" ~at:kill_at_block (fun () ->
          Tsj_core.Partsj.join ~domains
            ~checkpoint:(Checkpoint.config path)
            ~trees ~tau ())
    with
    | _ -> false (* too few blocks to reach the kill point *)
    | exception Fault.Injected _ -> true
  in
  let resumed =
    Tsj_core.Partsj.join ~domains
      ~checkpoint:(Checkpoint.config ~resume:true path)
      ~trees ~tau ()
  in
  if journal = None && Sys.file_exists path then Sys.remove path;
  { killed; uninterrupted; resumed }

type budget_report = {
  truth : Types.output;
  budgeted : Types.output;
  false_positives : Types.pair list;
  unaccounted : Types.pair list;
}

let quarantined_ids out =
  List.fold_left
    (fun acc q ->
      match q.Types.q_j with
      | None -> (q.Types.q_i, q.Types.q_i) :: acc
      | Some j -> (min q.Types.q_i j, max q.Types.q_i j) :: acc)
    [] out.Types.quarantined

let covered out p =
  let i = min p.Types.i p.Types.j and j = max p.Types.i p.Types.j in
  List.exists
    (fun (a, b) -> (a = b && (a = i || a = j)) || (a = i && b = j))
    (quarantined_ids out)

let run_budgeted ?(domains = 1) ~pair_cost_limit ~trees ~tau () =
  let truth = Tsj_core.Partsj.join ~domains ~trees ~tau () in
  let budget = Budget.create ~pair_cost_limit () in
  let budgeted = Tsj_core.Partsj.join ~domains ~budget ~trees ~tau () in
  let false_positives =
    List.filter (fun p -> not (List.mem p truth.Types.pairs)) budgeted.Types.pairs
  in
  let unaccounted =
    List.filter
      (fun p -> (not (List.mem p budgeted.Types.pairs)) && not (covered budgeted p))
      truth.Types.pairs
  in
  { truth; budgeted; false_positives; unaccounted }

let truncate_file path ~keep_bytes =
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let keep = min keep_bytes (String.length contents) in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub contents 0 keep))

(* --- server store kill-and-restart --- *)

type server_kill_report = {
  server_killed : bool;
  acked : int;
  expected : int;
  replayed : int;
  answers_match : bool;
}

let fresh_store_dir () =
  let path = Filename.temp_file "tsj_store" "" in
  Sys.remove path;
  path

let remove_store_dir dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let store_of_exn = function Ok s -> s | Error msg -> failwith msg

(* The crash-safety scenario of the service ADD path: feed [trees] into
   a journaled {!Tsj_server.Store}, kill it (injected raise at the
   [server.journal] hit point, store abandoned without close — the
   in-memory index is simply lost) at add number [kill_at_add], then
   restart from the on-disk state and compare query answers against a
   reference store fed exactly the acknowledged prefix.

   [tear_tail] additionally chops bytes off the journal's final record
   before the restart — a partial disk write from a crash mid-append.
   The torn record was never acknowledged-durable, so the expected
   surviving prefix shrinks by one. *)
let run_server_kill_and_restart ?(domains = 1) ?(kill_at_add = 1) ?(tear_tail = false)
    ~trees ~queries ~tau () =
  let dir = fresh_store_dir () in
  let acked = ref 0 in
  let server_killed =
    match
      Fault.with_armed "server.journal" ~at:kill_at_add (fun () ->
          let store = store_of_exn (Tsj_server.Store.open_ ~dir ~domains ~tau ()) in
          Array.iter
            (fun t ->
              ignore (Tsj_server.Store.add store t);
              incr acked)
            trees;
          Tsj_server.Store.close store)
    with
    | () -> false (* too few adds to reach the kill point *)
    | exception Fault.Injected _ -> true
  in
  let torn =
    if tear_tail && server_killed && !acked > 0 then begin
      let journal = Filename.concat dir "journal" in
      let len = (Unix.stat journal).Unix.st_size in
      (* Losing the trailing newline plus two checksum characters makes
         the final record undecodable — a torn tail, not mid-file
         corruption. *)
      truncate_file journal ~keep_bytes:(max 0 (len - 3));
      true
    end
    else false
  in
  let expected = if torn then !acked - 1 else !acked in
  let replayed_store = store_of_exn (Tsj_server.Store.open_ ~dir ~domains ~tau ()) in
  let reference = store_of_exn (Tsj_server.Store.open_ ~domains ~tau ()) in
  for i = 0 to expected - 1 do
    ignore (Tsj_server.Store.add reference trees.(i))
  done;
  let answers_match =
    Tsj_server.Store.n_trees replayed_store = expected
    && Array.for_all
         (fun q ->
           let a = Tsj_server.Store.query replayed_store q in
           let b = Tsj_server.Store.query reference q in
           a.Tsj_core.Incremental.hits = b.Tsj_core.Incremental.hits
           && (not a.degraded) && (not b.degraded))
         queries
  in
  let replayed = Tsj_server.Store.n_trees replayed_store in
  Tsj_server.Store.close replayed_store;
  remove_store_dir dir;
  { server_killed; acked = !acked; expected; replayed; answers_match }

(* --- replicated-cluster failover storm --- *)

module Sstore = Tsj_server.Store
module Replica = Tsj_server.Replica
module Cluster = Tsj_server.Cluster
module Sproto = Tsj_server.Protocol
module Sshard = Tsj_server.Shard
module Srouter = Tsj_server.Router
module Prng = Tsj_util.Prng

type failover_report = {
  storm_rounds : int;
  chaos_points : int;
  acked_adds : int;
  failed_adds : int;
  failovers : int;
  final_epoch : int;
  acked_preserved : bool;
  single_writer : bool;
  converged : bool;
  cluster_answers_match : bool;
}

type storm_node = {
  sn_idx : int;
  sn_dir : string;
  mutable sn_store : Sstore.t;
  mutable sn_replica : Replica.t;
  mutable sn_cluster : Cluster.t;
  mutable sn_dead : bool;
  mutable sn_partitioned : bool;
  mutable sn_stream_gen : int;
      (* bumped whenever the node (re)starts a replication stream; links
         created under an older generation fail like a closed socket *)
}

(* One replica group driven entirely in process: real journaled stores
   in temp directories, the real {!Replica}/{!Cluster} state machines,
   and an in-memory transport whose send and recv legs both check for
   partitions — so a record can be durably applied on the follower
   while its ack is lost, the ambiguous half of every replication
   protocol.  The unsharded failover storm runs one group; the sharded
   storm runs one per shard, sharing the [sg_active] ref so a targeted
   fault action can recognise which group is doing the work that
   tripped a hit point. *)
type storm_group = {
  sg_id : int;
  sg_quorum : int;
  sg_domains : int;
  sg_tau : int;
  sg_nodes : storm_node array;
  sg_feeding : int ref;  (* sn_idx of the follower currently being fed *)
  sg_active : int ref;  (* shared: sg_id of the group currently writing *)
  sg_failovers : int ref;
  sg_writers : (int, int) Hashtbl.t;  (* epoch -> the one writer's sn_idx *)
  sg_single_writer : bool ref;
  mutable sg_next_idx : int;  (* source of unique sn_idx (migration targets) *)
  mutable sg_graveyard : storm_node list;  (* retired nodes, closed at cleanup *)
}

let group_fresh_node g ~primary =
  let idx = g.sg_next_idx in
  g.sg_next_idx <- idx + 1;
  let dir = fresh_store_dir () in
  let store = store_of_exn (Sstore.open_ ~dir ~domains:g.sg_domains ~tau:g.sg_tau ()) in
  {
    sn_idx = idx;
    sn_dir = dir;
    sn_store = store;
    sn_replica = Replica.create ~primary store;
    sn_cluster = Cluster.create ~quorum:g.sg_quorum ();
    sn_dead = false;
    sn_partitioned = false;
    sn_stream_gen = 0;
  }

let group_create ~id ~active ~quorum ~domains ~tau ~replicas =
  let g =
    {
      sg_id = id;
      sg_quorum = quorum;
      sg_domains = domains;
      sg_tau = tau;
      sg_nodes = [||];
      sg_feeding = ref (-1);
      sg_active = active;
      sg_failovers = ref 0;
      sg_writers = Hashtbl.create 8;
      sg_single_writer = ref true;
      sg_next_idx = 0;
      sg_graveyard = [];
    }
  in
  let nodes = Array.init replicas (fun i -> group_fresh_node g ~primary:(i = 0)) in
  { g with sg_nodes = nodes }

let group_record_writer g node =
  let e = Sstore.epoch node.sn_store in
  match Hashtbl.find_opt g.sg_writers e with
  | None -> Hashtbl.add g.sg_writers e node.sn_idx
  | Some w -> if w <> node.sn_idx then g.sg_single_writer := false

let node_record_for node s = Sstore.record_for node.sn_store s

(* The transport: [send] delivers a pushed line straight into the
   follower's {!Replica.feed} and stashes the reaction; [recv] hands
   it back.  Both legs fail when either endpoint is dead or
   partitioned — a partition hit on the recv leg loses an ack the
   follower already made durable. *)
let group_link g pnode fnode =
  let gen = fnode.sn_stream_gen in
  let pending = ref None in
  let check leg =
    if
      pnode.sn_dead || fnode.sn_dead || pnode.sn_partitioned || fnode.sn_partitioned
      || fnode.sn_stream_gen <> gen
    then failwith ("replication link down (" ^ leg ^ ")")
  in
  let send line =
    check "send";
    g.sg_feeding := fnode.sn_idx;
    let reaction =
      Fun.protect
        ~finally:(fun () -> g.sg_feeding := -1)
        (fun () -> Replica.feed fnode.sn_replica line)
    in
    match reaction with
    | Replica.Reply r | Replica.Final r -> pending := Some r
    | Replica.Stop reason -> failwith ("stream stopped: " ^ reason)
  in
  let recv () =
    check "recv";
    match !pending with
    | Some r ->
      pending := None;
      r
    | None -> failwith "no reply pending"
  in
  (send, recv, fun () -> ())

(* Re-attach [fnode] as a follower of [pnode]: the follower's [SYNC]
   hello, the primary's {!Cluster.serve_sync} handshake, catch-up and
   registration — exactly the server's wire path, minus the socket.
   A fresh [fnode] syncs from sequence 0: the full-snapshot stream a
   shard migration rides. *)
let group_resync g pnode fnode =
  if
    fnode == pnode || fnode.sn_dead || fnode.sn_partitioned || pnode.sn_dead
    || pnode.sn_partitioned
  then false
  else begin
    if Replica.is_primary fnode.sn_replica then Replica.demote fnode.sn_replica;
    fnode.sn_stream_gen <- fnode.sn_stream_gen + 1;
    match Sproto.parse_request (Replica.hello fnode.sn_replica) with
    | Ok (Sproto.Sync { epoch = f_epoch; from_seq = _ }) -> (
      let send, recv, close = group_link g pnode fnode in
      match
        Cluster.serve_sync pnode.sn_cluster
          ~epoch:(fun () -> Sstore.epoch pnode.sn_store)
          ~base:(fun () -> Sstore.epoch_base pnode.sn_store)
          ~n_trees:(fun () -> Sstore.n_trees pnode.sn_store)
          ~record_for:(node_record_for pnode)
          ~primary:(fun () -> Replica.is_primary pnode.sn_replica)
          ~peer_id:(Printf.sprintf "node-%d-%d" g.sg_id fnode.sn_idx)
          ~f_epoch ~send ~recv ~close
      with
      | `Streaming -> true
      | `Fenced _ | `Refused _ -> false)
    | _ -> false
  end

(* Of the nodes still claiming the mandate, the one at the highest
   epoch is the real primary — a healed stale claimant sorts below it
   and is demoted when it re-syncs. *)
let group_current_primary g =
  let best = ref None in
  Array.iter
    (fun node ->
      if (not node.sn_dead) && Replica.is_primary node.sn_replica then
        match !best with
        | Some b when Sstore.epoch b.sn_store >= Sstore.epoch node.sn_store -> ()
        | _ -> best := Some node)
    g.sg_nodes;
  !best

let group_reachable_primary g =
  match group_current_primary g with
  | Some p when not p.sn_partitioned -> Some p
  | _ -> None

(* The operator's promotion rule: the reachable node with the highest
   (epoch, n_trees).  The stream is sequential, so among same-epoch
   nodes the longest one holds a superset — in particular every add
   that ever reached quorum. *)
let group_failover g =
  let best = ref None in
  Array.iter
    (fun node ->
      if (not node.sn_dead) && not node.sn_partitioned then begin
        let key = (Sstore.epoch node.sn_store, Sstore.n_trees node.sn_store) in
        match !best with
        | Some (k, _) when k >= key -> ()
        | _ -> best := Some (key, node)
      end)
    g.sg_nodes;
  match !best with
  | None -> None
  | Some (_, node) ->
    if not (Replica.is_primary node.sn_replica) then begin
      ignore (Replica.promote node.sn_replica);
      node.sn_cluster <- Cluster.create ~quorum:g.sg_quorum ();
      Cluster.set_acked_high node.sn_cluster (Sstore.n_trees node.sn_store);
      incr g.sg_failovers
    end;
    Some node

let group_recover g =
  match group_failover g with
  | None -> false
  | Some p ->
    Array.iter (fun node -> if node != p then ignore (group_resync g p node)) g.sg_nodes;
    true

let group_restart g node =
  node.sn_dead <- false;
  node.sn_partitioned <- false;
  node.sn_stream_gen <- node.sn_stream_gen + 1;
  (* kill -9 semantics: the old store object is abandoned unflushed;
     recovery must come from the journal alone *)
  let store = store_of_exn (Sstore.open_ ~dir:node.sn_dir ~domains:g.sg_domains ~tau:g.sg_tau ()) in
  node.sn_store <- store;
  node.sn_replica <- Replica.create ~primary:false store;
  node.sn_cluster <- Cluster.create ~quorum:g.sg_quorum ();
  Cluster.set_acked_high node.sn_cluster (Sstore.n_trees store)

let group_heal g =
  Array.iter (fun node -> node.sn_partitioned <- false) g.sg_nodes;
  Array.iter (fun node -> if node.sn_dead then group_restart g node) g.sg_nodes;
  let p =
    match group_current_primary g with
    | Some p -> p
    | None -> (
      match group_failover g with
      | Some p -> p
      | None -> failwith "storm: no promotable node")
  in
  Array.iter (fun node -> if node != p then ignore (group_resync g p node)) g.sg_nodes;
  p

(* The server's execute path for a replicated ADD, verbatim: local
   journaled add and quorum replication under one write lock, dup
   acks below the acked high-water mark, demotion on FENCED. *)
let group_do_add g node ~seq tree =
  let prev = !(g.sg_active) in
  g.sg_active := g.sg_id;
  Fun.protect
    ~finally:(fun () -> g.sg_active := prev)
    (fun () ->
      Cluster.with_write node.sn_cluster (fun () ->
          match Sstore.add_seq node.sn_store ~seq tree with
          | Error reason -> `Err reason
          | Ok (id, _partners) ->
            if id + 1 <= Cluster.acked_high node.sn_cluster then `Acked_dup
            else (
              match
                Cluster.replicate node.sn_cluster ~record_for:(node_record_for node) ~seq:id
              with
              | Cluster.Acks _ -> `Acked
              | Cluster.No_quorum _ -> `No_quorum
              | Cluster.Fenced_off e ->
                Replica.demote node.sn_replica;
                `Fenced_off e)))

(* The client's safe-retry ADD: learn a sequence number once, then
   retry with the {e same} seq across failures and failovers — the
   idempotency contract.  An ack computed by a node that died before
   answering is treated as lost (the ambiguous case); the retry
   resolves it via the new primary's dup ack.  [Some (seq, node)] on a
   delivered ack. *)
let group_client_add g tree =
  let rec go attempts seq_opt =
    if attempts <= 0 then None
    else
      match group_reachable_primary g with
      | None ->
        ignore (group_recover g);
        go (attempts - 1) seq_opt
      | Some node -> (
        let seq =
          match seq_opt with Some s -> s | None -> Sstore.n_trees node.sn_store
        in
        let outcome = group_do_add g node ~seq tree in
        let ack_delivered = (not node.sn_dead) && not node.sn_partitioned in
        match outcome with
        | (`Acked | `Acked_dup) when ack_delivered ->
          (match outcome with `Acked -> group_record_writer g node | _ -> ());
          Some (seq, node)
        | `Acked | `Acked_dup | `No_quorum | `Fenced_off _ -> go (attempts - 1) (Some seq)
        | `Err _ -> go (attempts - 1) None)
  in
  go 8 None

let one_shot body =
  let fired = ref false in
  fun payload ->
    if not !fired then begin
      match body payload with
      | `Skip -> ()
      | `Fire key ->
        fired := true;
        raise (Fault.Injected key)
    end

(* One chaos event against an otherwise healed group; [true] iff an
   event was injected (there was a primary to aim at). *)
let group_inject_chaos g rng =
  match group_current_primary g with
  | None -> false
  | Some p ->
    let followers =
      Array.to_list g.sg_nodes |> List.filter (fun x -> x != p && not x.sn_dead)
    in
    let pick_follower () = List.nth followers (Prng.int rng (List.length followers)) in
    (match Prng.int rng 6 with
    | 0 -> (pick_follower ()).sn_partitioned <- true
    | 1 -> p.sn_partitioned <- true
    | 2 -> p.sn_dead <- true
    | 3 ->
      (* kill the primary mid-quorum: after [k] of its peers have the
         record but before the client is answered *)
      let k = Prng.int rng 2 in
      Fault.arm_action "cluster.partition"
        (one_shot (fun idx ->
             if idx = k && !(g.sg_active) = g.sg_id then begin
               p.sn_dead <- true;
               `Fire "cluster.partition"
             end
             else `Skip))
    | 4 ->
      (* kill a follower just before it applies a pushed record: the
         record is lost there, the primary sees no ack *)
      let f = pick_follower () in
      Fault.arm_action "replica.stream"
        (one_shot (fun _seq ->
             if !(g.sg_feeding) = f.sn_idx then begin
               f.sn_dead <- true;
               `Fire "replica.stream"
             end
             else `Skip))
    | _ ->
      (* kill a follower after the durable apply but before the ack —
         the ambiguous case: durable yet unacknowledged *)
      let f = pick_follower () in
      Fault.arm_action "replica.ack"
        (one_shot (fun _seq ->
             if !(g.sg_feeding) = f.sn_idx then begin
               f.sn_dead <- true;
               `Fire "replica.ack"
             end
             else `Skip)));
    true

(* Journal-streaming shard migration: a brand-new node syncs from the
   source primary starting at sequence 0 (the full snapshot — SYNC
   verbatim), and once caught up is promoted, fencing the source via
   the epoch bump; the new node replaces the old primary's slot.  With
   [sabotage], a one-shot kill is armed against the stream (target or
   source dies mid-migration) and the cutover must abort cleanly: the
   half-synced target is discarded and the source keeps the shard. *)
let group_migrate g rng ~sabotage =
  match group_reachable_primary g with
  | None -> false
  | Some p ->
    let fresh = group_fresh_node g ~primary:false in
    if sabotage then begin
      let kill_target = Prng.bool rng in
      Fault.arm_action
        (if Prng.bool rng then "replica.stream" else "replica.ack")
        (one_shot (fun _seq ->
             if !(g.sg_feeding) = fresh.sn_idx then begin
               (if kill_target then fresh.sn_dead <- true else p.sn_dead <- true);
               `Fire "migration"
             end
             else `Skip))
    end;
    let streamed = group_resync g p fresh in
    let caught_up =
      streamed && (not fresh.sn_dead) && (not p.sn_dead)
      && Sstore.n_trees fresh.sn_store = Sstore.n_trees p.sn_store
    in
    if caught_up then begin
      ignore (Replica.promote fresh.sn_replica);
      Cluster.set_acked_high fresh.sn_cluster (Sstore.n_trees fresh.sn_store);
      let slot = ref (-1) in
      Array.iteri (fun i node -> if node == p then slot := i) g.sg_nodes;
      g.sg_graveyard <- p :: g.sg_graveyard;
      g.sg_nodes.(!slot) <- fresh;
      true
    end
    else begin
      (* aborted mid-migration: discard the target, keep the source *)
      fresh.sn_dead <- true;
      g.sg_graveyard <- fresh :: g.sg_graveyard;
      false
    end

let group_cleanup g =
  let close_node node =
    (try Sstore.close node.sn_store with _ -> ());
    remove_store_dir node.sn_dir
  in
  Array.iter close_node g.sg_nodes;
  List.iter close_node g.sg_graveyard

let tree_str node i = Tsj_tree.Bracket.to_string (Sstore.tree node.sn_store i)

let group_converged g primary =
  let n = Sstore.n_trees primary.sn_store in
  Array.for_all
    (fun node ->
      Sstore.n_trees node.sn_store = n
      && Sstore.epoch node.sn_store = Sstore.epoch primary.sn_store
      &&
      let ok = ref true in
      for i = 0 to n - 1 do
        if tree_str node i <> tree_str primary i then ok := false
      done;
      !ok)
    g.sg_nodes

(* The unsharded storm: one 3-node group, one chaos event per round —
   quorum 2-of-3 tolerates exactly one failure, so that is the
   envelope worth asserting in.  The driver plays both the client
   (safe-retry ADDs) and the operator (heal, restart, promote the
   reachable node with the highest (epoch, n_trees)). *)
let run_failover_storm ?(domains = 1) ?(seed = 0xC1A05) ?(rounds = 40) ?(quorum = 2)
    ~trees ~queries ~tau () =
  let rng = Prng.create seed in
  let g = group_create ~id:0 ~active:(ref (-1)) ~quorum ~domains ~tau ~replicas:3 in
  let chaos_points = ref 0
  and acked : (int * Tsj_tree.Tree.t) list ref = ref []
  and acked_adds = ref 0
  and failed_adds = ref 0 in
  let client_add tree =
    match group_client_add g tree with
    | Some (seq, _node) ->
      acked := (seq, tree) :: !acked;
      incr acked_adds;
      true
    | None ->
      incr failed_adds;
      false
  in
  let cleanup () =
    Fault.disarm_all ();
    group_cleanup g
  in
  Fun.protect ~finally:cleanup (fun () ->
      for _round = 1 to rounds do
        ignore (group_heal g);
        if group_inject_chaos g rng then incr chaos_points;
        let adds = 1 + Prng.int rng 3 in
        for _ = 1 to adds do
          ignore (client_add (Prng.choice rng trees))
        done;
        Fault.disarm_all ()
      done;
      (* final heal: everyone back, converged, one more acked write *)
      let primary = group_heal g in
      for _ = 1 to 3 do
        ignore (client_add (Prng.choice rng trees))
      done;
      Array.iter
        (fun node -> if node != primary then ignore (group_resync g primary node))
        g.sg_nodes;
      let n = Sstore.n_trees primary.sn_store in
      let converged = group_converged g primary in
      let acked_preserved =
        List.for_all
          (fun (seq, tree) ->
            seq < n && tree_str primary seq = Tsj_tree.Bracket.to_string tree)
          !acked
      in
      (* every surviving node must answer bit-identically to a
         single-node store that never failed, fed the same sequence *)
      let reference = store_of_exn (Sstore.open_ ~domains ~tau ()) in
      for i = 0 to n - 1 do
        ignore (Sstore.add reference (Sstore.tree primary.sn_store i))
      done;
      let node_matches node =
        Array.for_all
          (fun q ->
            let a = Sstore.query node.sn_store q in
            let b = Sstore.query reference q in
            a.Tsj_core.Incremental.hits = b.Tsj_core.Incremental.hits
            && (not a.degraded) && not b.degraded)
          queries
      in
      let cluster_answers_match = Array.for_all node_matches g.sg_nodes in
      {
        storm_rounds = rounds;
        chaos_points = !chaos_points;
        acked_adds = !acked_adds;
        failed_adds = !failed_adds;
        failovers = !(g.sg_failovers);
        final_epoch = Sstore.epoch primary.sn_store;
        acked_preserved;
        single_writer = !(g.sg_single_writer);
        converged;
        cluster_answers_match;
      })

(* --- sharded-cluster storm --- *)

type sharded_report = {
  sh_rounds : int;
  sh_shards : int;
  sh_chaos_points : int;
  sh_acked_adds : int;
  sh_failed_adds : int;
  sh_failovers : int;
  sh_migrations : int;
  sh_acked_preserved : bool;
  sh_single_writer : bool;
  sh_converged : bool;
  sh_degraded_sound : bool;
  sh_answers_match : bool;
}

(* The sharded storm: one replica group per shard, band-key routing by
   {!Tsj_server.Shard}, the driver playing the router — sticky-seq
   writes to the owning shard, a gid ledger appended only on delivered
   acks, orphan adoption (shard-acked, router-unacked trees picked up
   in lseq order), scatter-gather reads merged by the {e real}
   {!Tsj_server.Router.Merge}, and a router crash modelled by
   rebuilding the ledger from the reachable shards.  Chaos per round:
   the six per-group kinds, a mid-quorum/mid-migration kill, a
   journal-streaming migration, or a router-to-shard partition (the
   shard is healthy but the router must degrade around it).

   Mid-storm, every probe query's merged answer is checked {e sound}
   against a reference store fed the acked trees in gid order: each
   reference hit appears exactly or inside a sandwich, and no exact
   hit is invented.  After the final heal the merged QUERY and KNN
   answers must be bit-identical to the reference. *)
let run_sharded_storm ?(domains = 1) ?(seed = 0x5AAD) ?(rounds = 40) ?(shards = 3)
    ?(replicas = 3) ?(quorum = 2) ~trees ~queries ~tau () =
  if Array.length queries = 0 then invalid_arg "run_sharded_storm: no probe queries";
  let rng = Prng.create seed in
  let map = Sshard.create ~shards ~tau () in
  let active = ref (-1) in
  let groups =
    Array.init shards (fun s -> group_create ~id:s ~active ~quorum ~domains ~tau ~replicas)
  in
  let chaos_points = ref 0
  and acked : (int * int * Tsj_tree.Tree.t) list ref = ref []  (* (shard, lseq, tree) *)
  and acked_adds = ref 0
  and failed_adds = ref 0
  and migrations = ref 0
  and degraded_sound = ref true in
  let router_cut = Array.make shards false in
  (* the router's ledger: (shard, lseq) -> gid, per-shard residents and
     a reference store fed the bound trees in gid order (gid = its id) *)
  let lseq2gid : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let next_lseq = Array.make shards 0 in
  let res : (int * int) list ref array = Array.init shards (fun _ -> ref []) in
  let n_gids = ref 0 in
  let ref_store = ref (store_of_exn (Sstore.open_ ~domains ~tau ())) in
  let bind s lseq tree =
    assert (lseq = next_lseq.(s));
    Hashtbl.replace lseq2gid (s, lseq) !n_gids;
    res.(s) := (!n_gids, Tsj_tree.Tree.size tree) :: !(res.(s));
    ignore (Sstore.add !ref_store tree);
    incr n_gids;
    next_lseq.(s) <- lseq + 1
  in
  (* adopt every shard-acked tree below [upto] the ledger doesn't know *)
  let adopt s node ~upto =
    for l = next_lseq.(s) to upto - 1 do
      bind s l (Sstore.tree node.sn_store l)
    done
  in
  let router_add tree =
    let s = Sshard.shard_of_tree map tree in
    if router_cut.(s) then incr failed_adds
    else
      match group_client_add groups.(s) tree with
      | None -> incr failed_adds
      | Some (lseq, node) ->
        incr acked_adds;
        acked := (s, lseq, tree) :: !acked;
        if lseq >= next_lseq.(s) then begin
          adopt s node ~upto:lseq;
          bind s lseq tree
        end
  in
  (* the router dies: every in-memory mapping is lost and rebuilt from
     the reachable shards, shard-ascending, lseq-ascending — the same
     deterministic adoption order the real router's reconciliation
     uses.  Unreachable shards are adopted when next heard from. *)
  let router_restart () =
    Hashtbl.reset lseq2gid;
    Array.fill next_lseq 0 shards 0;
    Array.iter (fun r -> r := []) res;
    n_gids := 0;
    (try Sstore.close !ref_store with _ -> ());
    ref_store := store_of_exn (Sstore.open_ ~domains ~tau ());
    Array.iteri
      (fun s g ->
        if not router_cut.(s) then
          match group_reachable_primary g with
          | Some p -> adopt s p ~upto:(Sstore.n_trees p.sn_store)
          | None -> ())
      groups
  in
  let to_gid ~shard lid = Hashtbl.find_opt lseq2gid (shard, lid) in
  let resident ~shard = !(res.(shard)) in
  let merged_query q =
    let query_size = Tsj_tree.Tree.size q in
    let subset = Sshard.shards_for map ~tau query_size in
    let answers =
      List.map
        (fun s ->
          if router_cut.(s) then (s, Srouter.Merge.Unreachable)
          else
            match group_reachable_primary groups.(s) with
            | Some p ->
              let r = Sstore.query p.sn_store q in
              ( s,
                Srouter.Merge.Answer
                  {
                    degraded = r.Tsj_core.Incremental.degraded;
                    hits = r.Tsj_core.Incremental.hits;
                    unverified = r.Tsj_core.Incremental.unverified;
                  } )
            | None -> (s, Srouter.Merge.Unreachable))
        subset
    in
    Srouter.Merge.query ~query_size ~tau ~to_gid ~resident answers
  in
  let merged_knn ~k q =
    let query_size = Tsj_tree.Tree.size q in
    let subset = Sshard.shards_for map ~tau query_size in
    let answers =
      List.map
        (fun s ->
          if router_cut.(s) then (s, Srouter.Merge.Unreachable)
          else
            match group_reachable_primary groups.(s) with
            | Some p ->
              let hits = Sstore.nearest ~k p.sn_store q in
              (s, Srouter.Merge.Answer { degraded = false; hits; unverified = [] })
            | None -> (s, Srouter.Merge.Unreachable))
        subset
    in
    Srouter.Merge.knn ~k ~query_size ~tau ~to_gid ~resident answers
  in
  (* Soundness of a (possibly degraded) merged answer against the
     reference over the bound trees: every reference hit must surface
     exactly or inside its sandwich, and no exact hit may be invented. *)
  let check_sound q =
    let merged = merged_query q in
    let rref = Sstore.query !ref_store q in
    List.iter
      (fun (gid, d) ->
        let ok =
          List.mem (gid, d) merged.Srouter.a_hits
          || List.exists
               (fun (g', lo, hi) -> g' = gid && lo <= d && d <= hi)
               merged.Srouter.a_unverified
        in
        if not ok then degraded_sound := false)
      rref.Tsj_core.Incremental.hits;
    List.iter
      (fun (gid, d) ->
        if not (List.mem (gid, d) rref.Tsj_core.Incremental.hits) then
          degraded_sound := false)
      merged.Srouter.a_hits
  in
  let heal_all () =
    Array.fill router_cut 0 shards false;
    Array.iter (fun g -> ignore (group_heal g)) groups
  in
  let inject_chaos () =
    let s = Prng.int rng shards in
    let g = groups.(s) in
    match Prng.int rng 8 with
    | 6 ->
      incr chaos_points;
      if group_migrate g rng ~sabotage:(Prng.bool rng) then incr migrations
    | 7 ->
      (* the router loses the shard, not the shard its quorum: queries
         must degrade around it, writes to it fail without acking *)
      incr chaos_points;
      router_cut.(s) <- true
    | _ -> if group_inject_chaos g rng then incr chaos_points
  in
  let cleanup () =
    Fault.disarm_all ();
    Array.iter group_cleanup groups;
    try Sstore.close !ref_store with _ -> ()
  in
  Fun.protect ~finally:cleanup (fun () ->
      for round = 1 to rounds do
        heal_all ();
        inject_chaos ();
        let adds = 1 + Prng.int rng 3 in
        for _ = 1 to adds do
          router_add (Prng.choice rng trees)
        done;
        check_sound queries.(round mod Array.length queries);
        (* now and then the router itself crashes mid-storm *)
        if Prng.int rng 8 = 0 then router_restart ();
        Fault.disarm_all ()
      done;
      (* final heal: every shard back, a full reconciliation pass, and
         three more acked writes through the router *)
      heal_all ();
      for _ = 1 to 3 do
        router_add (Prng.choice rng trees)
      done;
      Array.iteri
        (fun s g ->
          match group_reachable_primary g with
          | Some p -> adopt s p ~upto:(Sstore.n_trees p.sn_store)
          | None -> ())
        groups;
      let primaries =
        Array.map
          (fun g ->
            match group_current_primary g with
            | Some p -> p
            | None -> failwith "sharded storm: shard lost its primary after heal")
          groups
      in
      let converged =
        Array.for_all2 (fun g p -> group_converged g p) groups primaries
      in
      let acked_preserved =
        List.for_all
          (fun (s, lseq, tree) ->
            lseq < Sstore.n_trees primaries.(s).sn_store
            && tree_str primaries.(s) lseq = Tsj_tree.Bracket.to_string tree)
          !acked
      in
      let single_writer =
        Array.for_all (fun g -> !(g.sg_single_writer)) groups
      in
      (* bit-identity on the healed cluster: merged QUERY and KNN equal
         the reference exactly, nothing degraded *)
      let k = 5 in
      let answers_match =
        Array.for_all
          (fun q ->
            let mq = merged_query q in
            let rq = Sstore.query !ref_store q in
            let mk = merged_knn ~k q in
            let rk = Sstore.nearest ~k !ref_store q in
            (not mq.Srouter.a_degraded)
            && mq.Srouter.a_hits = rq.Tsj_core.Incremental.hits
            && mq.Srouter.a_unverified = []
            && (not rq.Tsj_core.Incremental.degraded)
            && (not mk.Srouter.a_degraded)
            && mk.Srouter.a_hits = rk)
          queries
      in
      {
        sh_rounds = rounds;
        sh_shards = shards;
        sh_chaos_points = !chaos_points;
        sh_acked_adds = !acked_adds;
        sh_failed_adds = !failed_adds;
        sh_failovers = Array.fold_left (fun a g -> a + !(g.sg_failovers)) 0 groups;
        sh_migrations = !migrations;
        sh_acked_preserved = acked_preserved;
        sh_single_writer = single_writer;
        sh_converged = converged;
        sh_degraded_sound = !degraded_sound;
        sh_answers_match = answers_match;
      })

(* --- bit-rot scrub storm --- *)

let flip_bit path ~bit =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let off = bit / 8 in
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let b = Bytes.create 1 in
      if Unix.read fd b 0 1 <> 1 then failwith "flip_bit: short read";
      Bytes.set b 0
        (Char.chr (Char.code (Bytes.get b 0) lxor (1 lsl (bit mod 8))));
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      if Unix.write fd b 0 1 <> 1 then failwith "flip_bit: short write")

type scrub_storm_report = {
  sb_rounds : int;
  sb_flips : int;
  sb_read_faults : int;
  sb_detected : int;
  sb_all_detected : bool;
  sb_scrub_repairs : int;
  sb_healed : int;
  sb_quarantined : int;
  sb_divergences : int;
  sb_transferred : int;
  sb_transfer_expected : int;
  sb_full_resync_cost : int;
  sb_transfer_frugal : bool;
  sb_wrong_answers : int;
  sb_converged : bool;
}

(* The bit-rot storm: a primary and a mirroring replica (real journaled
   stores in temp directories) under steady ADD traffic, with one
   integrity fault injected per round — a random bit flipped in a live
   journal / snapshot / seal file (the scrubber must detect and repair
   it), a byte rotted mid-journal before a restart (the self-healing
   open must refetch the record from the primary, or quarantine it and
   let anti-entropy refill the suffix), a grafted wrong-but-valid
   record (Merkle anti-entropy must locate the divergence and transfer
   exactly the differing suffix), or an injected EIO on the scrubber's
   own read path (a finding, never a "repair" over a failing disk).
   Every round probes a query against a never-corrupted reference
   store: disk rot must never surface in answers. *)
let run_scrub_storm ?(domains = 1) ?(seed = 0x5C12B) ?(rounds = 30) ~trees
    ~queries ~tau () =
  if Array.length trees = 0 then invalid_arg "run_scrub_storm: no trees";
  if Array.length queries = 0 then invalid_arg "run_scrub_storm: no probe queries";
  let rng = Prng.create seed in
  let pdir = fresh_store_dir () and rdir = fresh_store_dir () in
  let primary = ref (store_of_exn (Sstore.open_ ~dir:pdir ~domains ~tau ()))
  and replica = ref (store_of_exn (Sstore.open_ ~dir:rdir ~domains ~tau ()))
  and reference = store_of_exn (Sstore.open_ ~domains ~tau ()) in
  let flips = ref 0
  and read_faults = ref 0
  and detected = ref 0
  and scrub_repairs = ref 0
  and healed = ref 0
  and quarantined = ref 0
  and divergences = ref 0
  and transferred = ref 0
  and transfer_expected = ref 0
  and full_resync_cost = ref 0
  and wrong = ref 0
  and repair_clean = ref true in
  let add tree =
    ignore (Sstore.add !primary tree);
    let seq = Sstore.n_trees !primary - 1 in
    (match Sstore.apply_record !replica (Sstore.record_for !primary seq) with
    | Ok _ -> ()
    | Error m -> failwith ("scrub storm: replica apply: " ^ m));
    ignore (Sstore.add reference tree)
  in
  (* disk rot must never reach an answer: both stores serve from the
     in-memory index, which is checked bit-identical to the reference *)
  let probe () =
    let q = Prng.choice rng queries in
    let want = (Sstore.query reference q).Tsj_core.Incremental.hits in
    let check st =
      if (Sstore.query st q).Tsj_core.Incremental.hits <> want then incr wrong
    in
    check !primary;
    check !replica
  in
  (* a full scrub cycle: two unbounded steps guarantee a cursor wrap,
     so the epoch header, both seals and every record get re-read *)
  let full_scrub st =
    let budget = Sstore.journal_records st + 1 in
    let a = Sstore.scrub_step ~budget st in
    let b = Sstore.scrub_step ~budget st in
    ( a.Sstore.sc_findings @ b.Sstore.sc_findings,
      a.Sstore.sc_repaired + b.Sstore.sc_repaired )
  in
  let assert_clean st =
    let clean, _ = full_scrub st in
    if clean <> [] then repair_clean := false
  in
  (* durable files of [dir] that currently have bytes to rot *)
  let rot_targets dir =
    let j = Filename.concat dir "journal" and s = Filename.concat dir "snapshot" in
    List.filter
      (fun p -> Sys.file_exists p && (Unix.stat p).Unix.st_size > 0)
      [ j; Tsj_server.Integrity.seal_path j; s; Tsj_server.Integrity.seal_path s ]
  in
  (* kind 0/1: flip a random bit in a live durable file; serving is
     unaffected, the scrub cycle must detect and repair, and the cycle
     after the repair must come back clean *)
  let live_rot st dir =
    match rot_targets dir with
    | [] -> ()
    | targets ->
      let path = Prng.choice rng (Array.of_list targets) in
      let bits = 8 * (Unix.stat path).Unix.st_size in
      flip_bit path ~bit:(Prng.int rng bits);
      incr flips;
      probe ();
      let findings, repaired = full_scrub !st in
      if findings <> [] then incr detected;
      scrub_repairs := !scrub_repairs + repaired;
      assert_clean !st
  in
  (* byte offsets [(start, len)] of the journal's record lines, header
     and trailing newlines excluded *)
  let record_extents text =
    let n = String.length text in
    let rec lines acc start =
      if start >= n then List.rev acc
      else
        match String.index_from_opt text start '\n' with
        | None -> List.rev ((start, n - start) :: acc)
        | Some nl -> lines ((start, nl - start) :: acc) (nl + 1)
    in
    List.filter
      (fun (start, len) ->
        len > 0 && not (len >= 6 && String.sub text start 6 = "epoch "))
      (lines [] 0)
  in
  (* rot one byte inside a mid-file record (never the tail: a corrupt
     last record is a torn tail, a different recovery path), leaving
     the store object abandoned un-closed — kill -9 semantics *)
  let rot_mid_record () =
    let jpath = Filename.concat rdir "journal" in
    let text = In_channel.with_open_bin jpath In_channel.input_all in
    match record_extents text with
    | [] | [ _ ] -> None
    | extents ->
      let victims = Array.of_list (List.rev (List.tl (List.rev extents))) in
      let start, len = victims.(Prng.int rng (Array.length victims)) in
      flip_bit jpath ~bit:(8 * (start + Prng.int rng len) + Prng.int rng 8);
      incr flips;
      Some ()
  in
  (* kind 2: restart the replica over a rotted journal with a heal
     callback that refetches the canonical record from the primary *)
  let reopen_heal () =
    match rot_mid_record () with
    | None -> live_rot replica rdir
    | Some () -> (
      let heal seq = Some (Sstore.record_for !primary seq) in
      match Sstore.open_ ~dir:rdir ~domains ~heal ~tau () with
      | Error m -> failwith ("scrub storm: healing open refused: " ^ m)
      | Ok st ->
        replica := st;
        let _, crc, repaired, _ = Sstore.scrub_counters st in
        if crc > 0 then incr detected;
        healed := !healed + repaired;
        if Sstore.n_trees st <> Sstore.n_trees !primary then
          failwith "scrub storm: healed replica lost trees";
        assert_clean st)
  in
  (* pure catch-up / post-divergence convergence via the Merkle digests
     of the primary, counting transferred records against the true
     suffix length and a full re-sync's cost *)
  let anti_entropy ~expected =
    let n_p = Sstore.n_trees !primary in
    full_resync_cost := !full_resync_cost + n_p;
    transfer_expected := !transfer_expected + expected;
    match
      Tsj_server.Scrub.anti_entropy ~local:!replica ~remote_n:n_p
        ~digest:(fun ~lo ~hi -> Ok (Sstore.digest !primary ~lo ~hi))
        ~fetch:(fun seq -> Ok (Sstore.record_for !primary seq))
    with
    | Error m -> failwith ("scrub storm: anti-entropy: " ^ m)
    | Ok t -> transferred := !transferred + t
  in
  (* kind 3: restart the replica over a rotted journal in quarantine
     mode — no heal source, the suffix is moved aside and served
     degraded (fewer trees, never wrong answers), then refilled from
     the primary by anti-entropy *)
  let reopen_quarantine () =
    match rot_mid_record () with
    | None -> live_rot replica rdir
    | Some () -> (
      match Sstore.open_ ~dir:rdir ~domains ~quarantine:true ~tau () with
      | Error m -> failwith ("scrub storm: quarantine open refused: " ^ m)
      | Ok st ->
        replica := st;
        let _, crc, _, q = Sstore.scrub_counters st in
        if crc > 0 || q > 0 then incr detected;
        quarantined := !quarantined + q;
        (* degraded but sound: no invented hits while the suffix is gone *)
        let qr = Prng.choice rng queries in
        let want = (Sstore.query reference qr).Tsj_core.Incremental.hits in
        List.iter
          (fun hit -> if not (List.mem hit want) then incr wrong)
          (Sstore.query st qr).Tsj_core.Incremental.hits;
        anti_entropy ~expected:(Sstore.n_trees !primary - Sstore.n_trees st);
        assert_clean !replica)
  in
  (* kind 4: a genuine divergence — truncate the replica at a random
     seq and graft a wrong-but-valid record there; the Merkle digests
     must locate the divergence and repair exactly the suffix *)
  let diverge () =
    let n = Sstore.n_trees !replica in
    if n < 2 then live_rot replica rdir
    else begin
      let d = 1 + Prng.int rng (n - 1) in
      Sstore.truncate_to !replica d;
      let truth = Tsj_tree.Bracket.to_string (Sstore.tree !primary d) in
      let wrong_tree =
        Array.to_seq trees
        |> Seq.find (fun t -> Tsj_tree.Bracket.to_string t <> truth)
      in
      (match wrong_tree with
      | None -> ()
      | Some t -> (
        match Sstore.apply_record !replica (Sstore.render_record ~seq:d t) with
        | Ok _ -> ()
        | Error m -> failwith ("scrub storm: graft: " ^ m)));
      incr divergences;
      anti_entropy ~expected:(Sstore.n_trees !primary - d)
    end
  in
  (* kind 5: EIO on the scrubber's own journal read — a finding, zero
     repairs (never "repair" over a failing disk) *)
  let read_fault () =
    let fired = ref false in
    Fault.arm_action "durable.read" (fun _ ->
        if not !fired then begin
          fired := true;
          raise
            (Tsj_util.Durable.Disk_fault
               {
                 Tsj_util.Durable.f_op = `Read;
                 f_path = Filename.concat pdir "journal";
                 f_detail = "injected EIO";
               })
        end);
    incr read_faults;
    let r = Sstore.scrub_step ~budget:(Sstore.journal_records !primary + 1) !primary in
    Fault.disarm_all ();
    if r.Sstore.sc_findings <> [] then incr detected;
    if r.Sstore.sc_repaired <> 0 then repair_clean := false;
    assert_clean !primary
  in
  let cleanup () =
    Fault.disarm_all ();
    (try Sstore.close !primary with _ -> ());
    (try Sstore.close !replica with _ -> ());
    (try Sstore.close reference with _ -> ());
    remove_store_dir pdir;
    remove_store_dir rdir
  in
  Fun.protect ~finally:cleanup (fun () ->
      for _round = 1 to rounds do
        let adds = 2 + Prng.int rng 2 in
        for _ = 1 to adds do
          add (Prng.choice rng trees)
        done;
        (match Prng.int rng 6 with
        | 0 -> live_rot primary pdir
        | 1 -> live_rot replica rdir
        | 2 -> reopen_heal ()
        | 3 -> reopen_quarantine ()
        | 4 -> diverge ()
        | _ -> read_fault ());
        probe ()
      done;
      (* final: both stores scrub clean and hold the reference's trees *)
      assert_clean !primary;
      assert_clean !replica;
      let n = Sstore.n_trees reference in
      let same st =
        Sstore.n_trees st = n
        && Array.for_all
             (fun i ->
               Tsj_tree.Bracket.to_string (Sstore.tree st i)
               = Tsj_tree.Bracket.to_string (Sstore.tree reference i))
             (Array.init n Fun.id)
      in
      let answers_match =
        Array.for_all
          (fun q ->
            let want = (Sstore.query reference q).Tsj_core.Incremental.hits in
            (Sstore.query !primary q).Tsj_core.Incremental.hits = want
            && (Sstore.query !replica q).Tsj_core.Incremental.hits = want)
          queries
      in
      let converged =
        !repair_clean && same !primary && same !replica && answers_match
      in
      {
        sb_rounds = rounds;
        sb_flips = !flips;
        sb_read_faults = !read_faults;
        sb_detected = !detected;
        sb_all_detected = !detected = !flips + !read_faults;
        sb_scrub_repairs = !scrub_repairs;
        sb_healed = !healed;
        sb_quarantined = !quarantined;
        sb_divergences = !divergences;
        sb_transferred = !transferred;
        sb_transfer_expected = !transfer_expected;
        sb_full_resync_cost = !full_resync_cost;
        sb_transfer_frugal =
          !transferred = !transfer_expected
          && (!full_resync_cost = 0 || !transferred < !full_resync_cost);
        sb_wrong_answers = !wrong;
        sb_converged = converged;
      })

(* --- overload storm --- *)

module Sserver = Tsj_server.Server
module Sclient = Tsj_server.Client

type overload_report = {
  ov_baseline_rps : float;
  ov_storm_rps : float;
  ov_goodput_ok : bool;
  ov_conforming_sent : int;
  ov_conforming_answered : int;
  ov_conforming_shed : int;
  ov_no_starvation : bool;
  ov_greedy_sent : int;
  ov_greedy_answered : int;
  ov_greedy_shed : int;
  ov_late_answers : int;
  ov_wrong_answers : int;
  ov_hedge_mismatches : int;
  ov_expired : int;
  ov_reaped : int;
  ov_expired_add_rejected : bool;
  ov_trees_stable : bool;
}

(* The overload storm: one server with fair admission (per-connection
   token buckets), a tight watermark and an idle reaper, under roughly
   10x its conforming load.  The cast: one {e conforming} client paced
   well below the bucket rate (its goodput is the asset being
   protected), [greedy] pipelined binary clients firing windows of
   short-deadline queries flat out (their excess is the overload), an
   {e idle} connection that must get reaped, and a {e hedge-race} pair
   issuing the same query on two connections at once (the replies must
   be bit-identical whenever both are exact).  Phase 1 measures the
   conforming client's goodput on the idle server; phase 2 re-runs it
   inside the storm.  A correct implementation keeps the storm goodput
   at >= 50%% of baseline, never starves the conforming client, never
   delivers an answer meaningfully past its announced deadline, never
   delivers a wrong answer, and rejects an already-expired ADD without
   growing the store. *)
let run_overload_storm ?(domains = 1) ?(seed = 0x10AD) ?(duration_s = 1.0)
    ?(greedy = 3) ?(rate = 80.0) ~trees ~queries ~tau () =
  if Array.length trees = 0 then invalid_arg "run_overload_storm: no trees";
  if Array.length queries = 0 then
    invalid_arg "run_overload_storm: no probe queries";
  let sock = Filename.temp_file "tsj_overload" ".sock" in
  Sys.remove sock;
  let addr = Sproto.Unix_path sock in
  let config =
    {
      (Sserver.default_config addr ~tau) with
      Sserver.domains;
      max_inflight = 32;
      deadline_s = Some 0.5;
      rate = Some rate;
      burst = 16;
      idle_timeout_s = Some 0.3;
      max_conns = Some 64;
    }
  in
  let server =
    match Sserver.create config with Ok s -> s | Error m -> failwith m
  in
  let finally () =
    (try Sserver.drain server with _ -> ());
    (try Sserver.wait server with _ -> ());
    if Sys.file_exists sock then Sys.remove sock
  in
  Fun.protect ~finally (fun () ->
      Array.iter (fun t -> ignore (Sstore.add (Sserver.store server) t)) trees;
      Sserver.start server;
      let nq = Array.length queries in
      let reference =
        Array.map
          (fun q -> (Sstore.query (Sserver.store server) q).Tsj_core.Incremental.hits)
          queries
      in
      let deadline_ms = 500 in
      let slack_s = 0.35 in
      let now () = Tsj_util.Timer.now () in
      (* The conforming client: lock-step text requests paced at a
         quarter of the bucket rate — always within its own budget. *)
      let run_conforming ~rng ~until =
        let period = 4.0 /. rate in
        let sent = ref 0 and answered = ref 0 and shed = ref 0 in
        let late = ref 0 and wrong = ref 0 in
        let conn = ref None in
        let start = now () in
        let i = ref 0 in
        while now () < until do
          let tick = start +. (float_of_int !i *. period) in
          incr i;
          let t = now () in
          if tick > t then Thread.delay (Float.min (tick -. t) (until -. t));
          if now () < until then begin
            let c =
              match !conn with
              | Some c -> Some c
              | None -> (
                match Sclient.connect ~timeout_s:1.0 addr with
                | Ok c ->
                  conn := Some c;
                  Some c
                | Error _ -> None)
            in
            match c with
            | None -> Thread.delay period
            | Some c -> (
              let qi = Prng.int rng nq in
              incr sent;
              let t0 = now () in
              match
                Sclient.request c ~deadline_ms
                  (Sproto.Query { tau; tree = queries.(qi) })
              with
              | Ok (Sproto.Hits { degraded; hits; _ }) ->
                incr answered;
                if now () -. t0 > (float_of_int deadline_ms /. 1000.) +. slack_s
                then incr late;
                if (not degraded) && hits <> reference.(qi) then incr wrong
              | Ok (Sproto.Busy _) -> incr shed
              | Ok _ -> ()
              | Error _ ->
                Sclient.close c;
                conn := None)
          end
        done;
        (match !conn with Some c -> Sclient.close c | None -> ());
        (!sent, !answered, !shed, !late, !wrong)
      in
      (* A greedy client: pipelined binary windows of short-deadline
         queries, fired flat out; its excess is shed from its own
         bucket.  Every request gets exactly one reply (HITS, BUSY or
         ERR), so a window of sends is matched by a window of recvs. *)
      let g_mutex = Mutex.create () in
      let greedy_sent = ref 0
      and greedy_answered = ref 0
      and greedy_shed = ref 0
      and greedy_late = ref 0 in
      let greedy_deadline_ms = 50 in
      let greedy_thread k until () =
        let rng = Prng.create (seed + (17 * (k + 1))) in
        let sent = ref 0 and answered = ref 0 and shed = ref 0 and late = ref 0 in
        let rec sessions () =
          if now () < until then begin
            (match Sclient.Bin.connect ~timeout_s:1.0 addr with
            | Error _ -> Thread.delay 0.02
            | Ok b ->
              let sent_at = Hashtbl.create 64 in
              (try
                 while now () < until do
                   let window = 16 in
                   for _ = 1 to window do
                     let qi = Prng.int rng nq in
                     let id =
                       Sclient.Bin.send b ~deadline_ms:greedy_deadline_ms
                         (Sproto.Query { tau; tree = queries.(qi) })
                     in
                     Hashtbl.replace sent_at id (now ());
                     incr sent
                   done;
                   Sclient.Bin.flush b;
                   for _ = 1 to window do
                     match Sclient.Bin.recv b with
                     | Ok (id, Sproto.Hits _) ->
                       incr answered;
                       (match Hashtbl.find_opt sent_at id with
                       | Some t0 ->
                         if
                           now () -. t0
                           > (float_of_int greedy_deadline_ms /. 1000.)
                             +. slack_s
                         then incr late
                       | None -> ())
                     | Ok (_, Sproto.Busy _) -> incr shed
                     | Ok _ -> ()
                     | Error _ -> raise Exit
                   done
                 done
               with Exit -> ());
              Sclient.Bin.close b);
            sessions ()
          end
        in
        sessions ();
        Mutex.protect g_mutex (fun () ->
            greedy_sent := !greedy_sent + !sent;
            greedy_answered := !greedy_answered + !answered;
            greedy_shed := !greedy_shed + !shed;
            greedy_late := !greedy_late + !late)
      in
      (* The hedge-race pair: the same query on two connections at
         once; whenever both replies are exact, they must render
         bit-identically — racing changes latency, never the answer. *)
      let hedge_mismatch = ref 0 in
      let hedge_thread until () =
        let rng = Prng.create (seed + 999) in
        while now () < until do
          let qi = Prng.int rng nq in
          let req = Sproto.Query { tau; tree = queries.(qi) } in
          let res = Array.make 2 None in
          let legs =
            Array.init 2 (fun j ->
                Thread.create
                  (fun () ->
                    match Sclient.connect ~timeout_s:1.0 addr with
                    | Error _ -> ()
                    | Ok c ->
                      (match Sclient.request c ~deadline_ms req with
                      | Ok r -> res.(j) <- Some r
                      | Error _ -> ());
                      Sclient.close c)
                  ())
          in
          Array.iter Thread.join legs;
          (match (res.(0), res.(1)) with
          | ( Some (Sproto.Hits { degraded = false; _ } as a),
              Some (Sproto.Hits { degraded = false; _ } as b) ) ->
            if Sproto.render_response a <> Sproto.render_response b then
              incr hedge_mismatch
          | _ -> ());
          Thread.delay 0.02
        done
      in
      (* phase 1: baseline goodput on the idle server *)
      let rng = Prng.create seed in
      let t_base = now () in
      let bsent, bans, bshed, blate, bwrong =
        run_conforming ~rng ~until:(t_base +. (duration_s /. 2.))
      in
      let baseline_wall = Float.max 1e-6 (now () -. t_base) in
      let baseline_rps = float_of_int bans /. baseline_wall in
      ignore bsent;
      (* phase 2: the same client inside the storm *)
      let until = now () +. duration_s in
      let idle = Result.to_option (Sclient.connect addr) in
      let threads =
        List.init greedy (fun k -> Thread.create (greedy_thread k until) ())
        @ [ Thread.create (hedge_thread until) () ]
      in
      let ssent, sans, sshed, slate, swrong = run_conforming ~rng ~until in
      List.iter Thread.join threads;
      let storm_rps = float_of_int sans /. duration_s in
      (* an ADD arriving with a spent budget must be refused before the
         journal, leaving the store exactly as preloaded *)
      let expired_add_rejected =
        match Sclient.connect ~timeout_s:1.0 addr with
        | Error _ -> false
        | Ok c ->
          let r =
            Sclient.request c ~deadline_ms:0
              (Sproto.Add { seq = None; tree = trees.(0) })
          in
          Sclient.close c;
          (match r with Ok (Sproto.Err "deadline expired") -> true | _ -> false)
      in
      (match idle with Some c -> Sclient.close c | None -> ());
      let st = Sserver.stats server in
      {
        ov_baseline_rps = baseline_rps;
        ov_storm_rps = storm_rps;
        ov_goodput_ok = storm_rps >= 0.5 *. baseline_rps;
        ov_conforming_sent = ssent;
        ov_conforming_answered = sans;
        ov_conforming_shed = bshed + sshed;
        ov_no_starvation = 2 * sans >= ssent;
        ov_greedy_sent = !greedy_sent;
        ov_greedy_answered = !greedy_answered;
        ov_greedy_shed = !greedy_shed;
        ov_late_answers = blate + slate + !greedy_late;
        ov_wrong_answers = bwrong + swrong;
        ov_hedge_mismatches = !hedge_mismatch;
        ov_expired = st.Sproto.expired;
        ov_reaped = st.Sproto.reaped;
        ov_expired_add_rejected = expired_add_rejected;
        ov_trees_stable = st.Sproto.trees = Array.length trees;
      })
