module Types = Tsj_join.Types
module Fault = Tsj_util.Fault_inject
module Checkpoint = Tsj_join.Checkpoint
module Budget = Tsj_join.Budget

type kill_report = {
  killed : bool;
  uninterrupted : Types.output;
  resumed : Types.output;
}

let fresh_journal () =
  let path = Filename.temp_file "tsj_ckpt" ".journal" in
  Sys.remove path;
  path

let run_kill_and_resume ?(domains = 1) ?(kill_at_block = 1) ?journal ~trees ~tau () =
  let path = match journal with Some p -> p | None -> fresh_journal () in
  if Sys.file_exists path then Sys.remove path;
  let uninterrupted = Tsj_core.Partsj.join ~domains ~trees ~tau () in
  (* Crash run: the injected raise fires at the top of block
     [kill_at_block], after the previous block's journal entry — the
     worst case a real kill can leave behind. *)
  let killed =
    match
      Fault.with_armed "partsj.block" ~at:kill_at_block (fun () ->
          Tsj_core.Partsj.join ~domains
            ~checkpoint:(Checkpoint.config path)
            ~trees ~tau ())
    with
    | _ -> false (* too few blocks to reach the kill point *)
    | exception Fault.Injected _ -> true
  in
  let resumed =
    Tsj_core.Partsj.join ~domains
      ~checkpoint:(Checkpoint.config ~resume:true path)
      ~trees ~tau ()
  in
  if journal = None && Sys.file_exists path then Sys.remove path;
  { killed; uninterrupted; resumed }

type budget_report = {
  truth : Types.output;
  budgeted : Types.output;
  false_positives : Types.pair list;
  unaccounted : Types.pair list;
}

let quarantined_ids out =
  List.fold_left
    (fun acc q ->
      match q.Types.q_j with
      | None -> (q.Types.q_i, q.Types.q_i) :: acc
      | Some j -> (min q.Types.q_i j, max q.Types.q_i j) :: acc)
    [] out.Types.quarantined

let covered out p =
  let i = min p.Types.i p.Types.j and j = max p.Types.i p.Types.j in
  List.exists
    (fun (a, b) -> (a = b && (a = i || a = j)) || (a = i && b = j))
    (quarantined_ids out)

let run_budgeted ?(domains = 1) ~pair_cost_limit ~trees ~tau () =
  let truth = Tsj_core.Partsj.join ~domains ~trees ~tau () in
  let budget = Budget.create ~pair_cost_limit () in
  let budgeted = Tsj_core.Partsj.join ~domains ~budget ~trees ~tau () in
  let false_positives =
    List.filter (fun p -> not (List.mem p truth.Types.pairs)) budgeted.Types.pairs
  in
  let unaccounted =
    List.filter
      (fun p -> (not (List.mem p budgeted.Types.pairs)) && not (covered budgeted p))
      truth.Types.pairs
  in
  { truth; budgeted; false_positives; unaccounted }

let truncate_file path ~keep_bytes =
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let keep = min keep_bytes (String.length contents) in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub contents 0 keep))
