module Types = Tsj_join.Types
module Fault = Tsj_util.Fault_inject
module Checkpoint = Tsj_join.Checkpoint
module Budget = Tsj_join.Budget

type kill_report = {
  killed : bool;
  uninterrupted : Types.output;
  resumed : Types.output;
}

let fresh_journal () =
  let path = Filename.temp_file "tsj_ckpt" ".journal" in
  Sys.remove path;
  path

let run_kill_and_resume ?(domains = 1) ?(kill_at_block = 1) ?journal ~trees ~tau () =
  let path = match journal with Some p -> p | None -> fresh_journal () in
  if Sys.file_exists path then Sys.remove path;
  let uninterrupted = Tsj_core.Partsj.join ~domains ~trees ~tau () in
  (* Crash run: the injected raise fires at the top of block
     [kill_at_block], after the previous block's journal entry — the
     worst case a real kill can leave behind. *)
  let killed =
    match
      Fault.with_armed "partsj.block" ~at:kill_at_block (fun () ->
          Tsj_core.Partsj.join ~domains
            ~checkpoint:(Checkpoint.config path)
            ~trees ~tau ())
    with
    | _ -> false (* too few blocks to reach the kill point *)
    | exception Fault.Injected _ -> true
  in
  let resumed =
    Tsj_core.Partsj.join ~domains
      ~checkpoint:(Checkpoint.config ~resume:true path)
      ~trees ~tau ()
  in
  if journal = None && Sys.file_exists path then Sys.remove path;
  { killed; uninterrupted; resumed }

type budget_report = {
  truth : Types.output;
  budgeted : Types.output;
  false_positives : Types.pair list;
  unaccounted : Types.pair list;
}

let quarantined_ids out =
  List.fold_left
    (fun acc q ->
      match q.Types.q_j with
      | None -> (q.Types.q_i, q.Types.q_i) :: acc
      | Some j -> (min q.Types.q_i j, max q.Types.q_i j) :: acc)
    [] out.Types.quarantined

let covered out p =
  let i = min p.Types.i p.Types.j and j = max p.Types.i p.Types.j in
  List.exists
    (fun (a, b) -> (a = b && (a = i || a = j)) || (a = i && b = j))
    (quarantined_ids out)

let run_budgeted ?(domains = 1) ~pair_cost_limit ~trees ~tau () =
  let truth = Tsj_core.Partsj.join ~domains ~trees ~tau () in
  let budget = Budget.create ~pair_cost_limit () in
  let budgeted = Tsj_core.Partsj.join ~domains ~budget ~trees ~tau () in
  let false_positives =
    List.filter (fun p -> not (List.mem p truth.Types.pairs)) budgeted.Types.pairs
  in
  let unaccounted =
    List.filter
      (fun p -> (not (List.mem p budgeted.Types.pairs)) && not (covered budgeted p))
      truth.Types.pairs
  in
  { truth; budgeted; false_positives; unaccounted }

let truncate_file path ~keep_bytes =
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let keep = min keep_bytes (String.length contents) in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub contents 0 keep))

(* --- server store kill-and-restart --- *)

type server_kill_report = {
  server_killed : bool;
  acked : int;
  expected : int;
  replayed : int;
  answers_match : bool;
}

let fresh_store_dir () =
  let path = Filename.temp_file "tsj_store" "" in
  Sys.remove path;
  path

let remove_store_dir dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let store_of_exn = function Ok s -> s | Error msg -> failwith msg

(* The crash-safety scenario of the service ADD path: feed [trees] into
   a journaled {!Tsj_server.Store}, kill it (injected raise at the
   [server.journal] hit point, store abandoned without close — the
   in-memory index is simply lost) at add number [kill_at_add], then
   restart from the on-disk state and compare query answers against a
   reference store fed exactly the acknowledged prefix.

   [tear_tail] additionally chops bytes off the journal's final record
   before the restart — a partial disk write from a crash mid-append.
   The torn record was never acknowledged-durable, so the expected
   surviving prefix shrinks by one. *)
let run_server_kill_and_restart ?(domains = 1) ?(kill_at_add = 1) ?(tear_tail = false)
    ~trees ~queries ~tau () =
  let dir = fresh_store_dir () in
  let acked = ref 0 in
  let server_killed =
    match
      Fault.with_armed "server.journal" ~at:kill_at_add (fun () ->
          let store = store_of_exn (Tsj_server.Store.open_ ~dir ~domains ~tau ()) in
          Array.iter
            (fun t ->
              ignore (Tsj_server.Store.add store t);
              incr acked)
            trees;
          Tsj_server.Store.close store)
    with
    | () -> false (* too few adds to reach the kill point *)
    | exception Fault.Injected _ -> true
  in
  let torn =
    if tear_tail && server_killed && !acked > 0 then begin
      let journal = Filename.concat dir "journal" in
      let len = (Unix.stat journal).Unix.st_size in
      (* Losing the trailing newline plus two checksum characters makes
         the final record undecodable — a torn tail, not mid-file
         corruption. *)
      truncate_file journal ~keep_bytes:(max 0 (len - 3));
      true
    end
    else false
  in
  let expected = if torn then !acked - 1 else !acked in
  let replayed_store = store_of_exn (Tsj_server.Store.open_ ~dir ~domains ~tau ()) in
  let reference = store_of_exn (Tsj_server.Store.open_ ~domains ~tau ()) in
  for i = 0 to expected - 1 do
    ignore (Tsj_server.Store.add reference trees.(i))
  done;
  let answers_match =
    Tsj_server.Store.n_trees replayed_store = expected
    && Array.for_all
         (fun q ->
           let a = Tsj_server.Store.query replayed_store q in
           let b = Tsj_server.Store.query reference q in
           a.Tsj_core.Incremental.hits = b.Tsj_core.Incremental.hits
           && (not a.degraded) && (not b.degraded))
         queries
  in
  let replayed = Tsj_server.Store.n_trees replayed_store in
  Tsj_server.Store.close replayed_store;
  remove_store_dir dir;
  { server_killed; acked = !acked; expected; replayed; answers_match }
