(** Fault-injection scenario drivers for the resilient PartSJ execution.

    Each driver runs a complete scenario against {!Tsj_core.Partsj} using
    the {!Tsj_util.Fault_inject} hit points and returns the raw outputs
    for the caller (tests, {!Experiments.resilience}) to assert on.  All
    drivers disarm their injections on every exit path. *)

type kill_report = {
  killed : bool;
      (** the injected crash actually fired (false when the collection
          has too few blocks to reach the kill point) *)
  uninterrupted : Tsj_join.Types.output;  (** reference run, no checkpoint *)
  resumed : Tsj_join.Types.output;        (** run resumed from the crash journal *)
}

val run_kill_and_resume :
  ?domains:int ->
  ?kill_at_block:int ->
  ?journal:string ->
  trees:Tsj_tree.Tree.t array ->
  tau:int ->
  unit ->
  kill_report
(** Runs the join uninterrupted; reruns it with a block-granular
    checkpoint journal and an injected crash at the top of block
    [kill_at_block] (default 1); resumes from the journal.  A correct
    implementation yields
    [Types.equal_deterministic uninterrupted resumed = true].
    [journal] defaults to a fresh temp path, removed afterwards. *)

type budget_report = {
  truth : Tsj_join.Types.output;     (** unbudgeted reference run *)
  budgeted : Tsj_join.Types.output;  (** run under the per-pair budget *)
  false_positives : Tsj_join.Types.pair list;
      (** budgeted pairs absent from the truth — must be [[]] *)
  unaccounted : Tsj_join.Types.pair list;
      (** truth pairs neither reported nor covered by a quarantine
          record — must be [[]] (completeness up to the quarantined
          set) *)
}

val run_budgeted :
  ?domains:int ->
  pair_cost_limit:int ->
  trees:Tsj_tree.Tree.t array ->
  tau:int ->
  unit ->
  budget_report
(** Soundness scenario for graceful degradation under a per-pair
    verification budget. *)

val truncate_file : string -> keep_bytes:int -> unit
(** Truncates a file in place — corrupts a checkpoint journal for the
    torn-journal scenarios. *)

val fresh_journal : unit -> string
(** A fresh non-existent temp path for a checkpoint journal. *)

type server_kill_report = {
  server_killed : bool;
      (** the injected crash fired (false when there are fewer adds than
          the kill point) *)
  acked : int;  (** adds acknowledged before the crash *)
  expected : int;
      (** adds that must survive the restart: [acked], minus one when the
          journal tail was torn (that record was a partial write) *)
  replayed : int;  (** trees in the restarted store *)
  answers_match : bool;
      (** the restarted store answers every probe query bit-identically
          to a store fed exactly the expected prefix, and
          [replayed = expected] *)
}

val run_server_kill_and_restart :
  ?domains:int ->
  ?kill_at_add:int ->
  ?tear_tail:bool ->
  trees:Tsj_tree.Tree.t array ->
  queries:Tsj_tree.Tree.t array ->
  tau:int ->
  unit ->
  server_kill_report
(** Crash-safety scenario for the service's journaled ADD path: feed
    [trees] into a {!Tsj_server.Store}, crash it via the
    [server.journal] hit point at add [kill_at_add] (default 1,
    abandoning the store without a close), optionally tear the last
    journal record ([tear_tail]), restart from disk and compare query
    answers against a reference store fed the surviving prefix.  A
    correct implementation yields [answers_match = true].  The temp
    store directory is removed afterwards. *)

type failover_report = {
  storm_rounds : int;
  chaos_points : int;
      (** kill/partition events injected (one per round) *)
  acked_adds : int;  (** ADDs the client saw acknowledged *)
  failed_adds : int;
      (** ADDs the client gave up on — never acknowledged, so allowed
          (but not required) to be lost *)
  failovers : int;  (** promotions performed by the driver-as-operator *)
  final_epoch : int;
  acked_preserved : bool;
      (** every acknowledged (seq, tree) is present, bit-identical, at
          [seq] in the healed cluster — the "zero acked ADDs lost"
          invariant *)
  single_writer : bool;
      (** no epoch had acknowledged writes accepted by two different
          nodes — the fencing invariant *)
  converged : bool;
      (** after the final heal, every node holds the same trees at the
          same epoch *)
  cluster_answers_match : bool;
      (** every node answers the probe queries bit-identically to a
          single-node store that never failed, fed the same sequence *)
}

val run_failover_storm :
  ?domains:int ->
  ?seed:int ->
  ?rounds:int ->
  ?quorum:int ->
  trees:Tsj_tree.Tree.t array ->
  queries:Tsj_tree.Tree.t array ->
  tau:int ->
  unit ->
  failover_report
(** Chaos scenario for the replicated service: a three-node in-process
    cluster (real journaled stores in temp directories, the real
    {!Tsj_server.Replica}/{!Tsj_server.Cluster} machinery, an in-memory
    transport that can drop either the record leg or the ack leg of the
    stream).  Each of [rounds] (default 40) rounds heals the cluster,
    injects one randomized chaos event — partition a node, kill a node
    outright, kill the primary mid-quorum via [cluster.partition], or
    kill a follower before/after a durable apply via
    [replica.stream]/[replica.ack] — then drives safe-retry client
    ADDs, failing over (promote the reachable node with the highest
    (epoch, n_trees)) whenever the primary is gone.  A correct
    implementation yields [acked_preserved && single_writer &&
    converged && cluster_answers_match].  All temp stores are removed
    afterwards. *)

type sharded_report = {
  sh_rounds : int;
  sh_shards : int;
  sh_chaos_points : int;  (** chaos events injected (one per round) *)
  sh_acked_adds : int;  (** router-acked ADDs across all shards *)
  sh_failed_adds : int;
      (** ADDs the router gave up on (shard unreachable from the router,
          or no quorum) — never acknowledged, so allowed to be lost *)
  sh_failovers : int;  (** per-shard promotions, summed *)
  sh_migrations : int;
      (** completed journal-streaming shard migrations (sabotaged ones
          abort and do not count) *)
  sh_acked_preserved : bool;
      (** every router-acked (shard, lseq, tree) is present,
          bit-identical, on the healed shard — zero acked ADDs lost *)
  sh_single_writer : bool;
      (** the fencing invariant holds in every shard's replica group:
          one writer per epoch per shard *)
  sh_converged : bool;  (** every shard's replicas converged after heal *)
  sh_degraded_sound : bool;
      (** every mid-storm merged answer was sound against the reference:
          each true hit surfaced exactly or inside its [lo, hi]
          sandwich, and no exact hit was invented *)
  sh_answers_match : bool;
      (** after the final heal, merged QUERY and KNN answers are
          bit-identical to an unsharded reference store fed the acked
          trees in gid order *)
}

val run_sharded_storm :
  ?domains:int ->
  ?seed:int ->
  ?rounds:int ->
  ?shards:int ->
  ?replicas:int ->
  ?quorum:int ->
  trees:Tsj_tree.Tree.t array ->
  queries:Tsj_tree.Tree.t array ->
  tau:int ->
  unit ->
  sharded_report
(** Chaos scenario for the {e sharded} service: one in-process replica
    group per shard (default 3 shards × 3 replicas, quorum 2), band-key
    routing by {!Tsj_server.Shard}, and the driver playing the router —
    sticky-seq writes to the owning shard, a gid ledger appended only
    on delivered acks, orphan adoption in lseq order, and reads merged
    by the real {!Tsj_server.Router.Merge}.  Each of [rounds] (default
    40) rounds heals everything and injects one chaos event: the six
    per-group kinds of {!run_failover_storm} (including mid-quorum
    kills), a journal-streaming migration — sometimes sabotaged by a
    one-shot kill of the stream's source or target mid-migration, which
    must abort the cutover cleanly — or a router-side event (the router
    loses one shard, or crashes outright and rebuilds its ledger from
    the reachable shards).  Every round also probes one query and
    checks the merged, possibly degraded, answer is sound against an
    unsharded reference.  A correct implementation yields
    [sh_acked_preserved && sh_single_writer && sh_converged &&
    sh_degraded_sound && sh_answers_match]. *)

val flip_bit : string -> bit:int -> unit
(** Flip one bit of a file in place (read-modify-write of a single
    byte; any channel appending to the file is undisturbed) — injected
    media rot for the integrity scenarios. *)

type scrub_storm_report = {
  sb_rounds : int;
  sb_flips : int;  (** bits flipped across live files and restarts *)
  sb_read_faults : int;  (** injected EIOs on the scrubber's read path *)
  sb_detected : int;
      (** injected corruptions the integrity machinery caught (scrub
          findings, healed/quarantined records, read-fault findings) *)
  sb_all_detected : bool;  (** [sb_detected = sb_flips + sb_read_faults] *)
  sb_scrub_repairs : int;  (** repairs applied by live scrub cycles *)
  sb_healed : int;  (** records refetched from the primary at reopen *)
  sb_quarantined : int;  (** records/snapshots moved aside as unrepairable *)
  sb_divergences : int;  (** grafted wrong-history rounds *)
  sb_transferred : int;  (** records re-sent by Merkle anti-entropy *)
  sb_transfer_expected : int;
      (** summed true suffix lengths — what a perfectly targeted repair
          transfers *)
  sb_full_resync_cost : int;
      (** summed store sizes at each anti-entropy call — what full
          re-syncs would have transferred *)
  sb_transfer_frugal : bool;
      (** [sb_transferred = sb_transfer_expected], and strictly below
          [sb_full_resync_cost]: repair moved only the differing range *)
  sb_wrong_answers : int;
      (** probe answers that differed from the never-corrupted reference
          (degraded quarantine answers checked for invented hits) —
          must be 0: rot never surfaces in answers *)
  sb_converged : bool;
      (** final state: both stores scrub clean, hold the reference's
          trees bit-identically, and every post-repair cycle was clean *)
}

val run_scrub_storm :
  ?domains:int ->
  ?seed:int ->
  ?rounds:int ->
  trees:Tsj_tree.Tree.t array ->
  queries:Tsj_tree.Tree.t array ->
  tau:int ->
  unit ->
  scrub_storm_report
(** The bit-rot storm: a primary and a mirroring replica (journaled
    stores in temp directories) under steady ADD traffic, one integrity
    fault per round (default 30) — a random bit flipped in a live
    journal / snapshot / seal file, repaired by a full
    {!Tsj_server.Store.scrub_step} cycle; a byte rotted mid-journal
    before a restart, healed by the self-healing open refetching the
    record from the primary, or quarantined and refilled by
    {!Tsj_server.Scrub.anti_entropy}; a grafted divergent record,
    located by Merkle digests and repaired by transferring exactly the
    differing suffix; or an injected EIO on the scrubber's own read.
    A correct implementation yields [sb_all_detected &&
    sb_transfer_frugal && sb_wrong_answers = 0 && sb_converged]. *)

type overload_report = {
  ov_baseline_rps : float;
      (** conforming-client goodput on the idle server (answers/s) *)
  ov_storm_rps : float;  (** the same client's goodput inside the storm *)
  ov_goodput_ok : bool;  (** [ov_storm_rps >= 0.5 *. ov_baseline_rps] *)
  ov_conforming_sent : int;  (** conforming requests sent during the storm *)
  ov_conforming_answered : int;  (** of those, answered with HITS *)
  ov_conforming_shed : int;  (** conforming requests answered BUSY — should
                                 stay 0: the client never exceeds its bucket *)
  ov_no_starvation : bool;
      (** at least half the conforming requests were answered *)
  ov_greedy_sent : int;  (** requests fired by the greedy clients *)
  ov_greedy_answered : int;
  ov_greedy_shed : int;  (** greedy requests refused BUSY by their buckets *)
  ov_late_answers : int;
      (** HITS delivered well past the request's announced deadline
          (beyond a scheduling-slack allowance) — must be 0 *)
  ov_wrong_answers : int;
      (** exact (non-degraded) answers differing from the single-client
          reference — must be 0 *)
  ov_hedge_mismatches : int;
      (** hedge-race rounds where two exact replies to the same query
          did not render bit-identically — must be 0 *)
  ov_expired : int;  (** server counter: work dropped with a spent budget *)
  ov_reaped : int;
      (** server counter: connections reaped by hygiene — at least 1,
          the storm's deliberately idle connection *)
  ov_expired_add_rejected : bool;
      (** an ADD sent with [@0] budget came back [ERR deadline expired] *)
  ov_trees_stable : bool;
      (** the store still holds exactly the preloaded trees: the expired
          ADD never reached the journal *)
}

val run_overload_storm :
  ?domains:int ->
  ?seed:int ->
  ?duration_s:float ->
  ?greedy:int ->
  ?rate:float ->
  trees:Tsj_tree.Tree.t array ->
  queries:Tsj_tree.Tree.t array ->
  tau:int ->
  unit ->
  overload_report
(** The overload storm: one server with fair admission (per-connection
    token buckets at [rate] answers/s, burst 16), a 32-job watermark
    with least-remaining-deadline shedding, a 300 ms idle reaper and a
    0.5 s compute budget, under roughly 10x its conforming load.  One
    conforming client paced at a quarter of the bucket rate measures
    goodput before ([duration_s]/2) and during ([duration_s]) the
    storm; [greedy] pipelined binary clients (default 3) fire windows
    of 50 ms-deadline queries flat out; one idle connection waits to be
    reaped; a hedge-race pair issues the same query on two connections
    at once and compares renders.  A correct implementation yields
    [ov_goodput_ok && ov_no_starvation && ov_late_answers = 0 &&
    ov_wrong_answers = 0 && ov_hedge_mismatches = 0 &&
    ov_expired_add_rejected && ov_trees_stable && ov_reaped >= 1]. *)
