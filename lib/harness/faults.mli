(** Fault-injection scenario drivers for the resilient PartSJ execution.

    Each driver runs a complete scenario against {!Tsj_core.Partsj} using
    the {!Tsj_util.Fault_inject} hit points and returns the raw outputs
    for the caller (tests, {!Experiments.resilience}) to assert on.  All
    drivers disarm their injections on every exit path. *)

type kill_report = {
  killed : bool;
      (** the injected crash actually fired (false when the collection
          has too few blocks to reach the kill point) *)
  uninterrupted : Tsj_join.Types.output;  (** reference run, no checkpoint *)
  resumed : Tsj_join.Types.output;        (** run resumed from the crash journal *)
}

val run_kill_and_resume :
  ?domains:int ->
  ?kill_at_block:int ->
  ?journal:string ->
  trees:Tsj_tree.Tree.t array ->
  tau:int ->
  unit ->
  kill_report
(** Runs the join uninterrupted; reruns it with a block-granular
    checkpoint journal and an injected crash at the top of block
    [kill_at_block] (default 1); resumes from the journal.  A correct
    implementation yields
    [Types.equal_deterministic uninterrupted resumed = true].
    [journal] defaults to a fresh temp path, removed afterwards. *)

type budget_report = {
  truth : Tsj_join.Types.output;     (** unbudgeted reference run *)
  budgeted : Tsj_join.Types.output;  (** run under the per-pair budget *)
  false_positives : Tsj_join.Types.pair list;
      (** budgeted pairs absent from the truth — must be [[]] *)
  unaccounted : Tsj_join.Types.pair list;
      (** truth pairs neither reported nor covered by a quarantine
          record — must be [[]] (completeness up to the quarantined
          set) *)
}

val run_budgeted :
  ?domains:int ->
  pair_cost_limit:int ->
  trees:Tsj_tree.Tree.t array ->
  tau:int ->
  unit ->
  budget_report
(** Soundness scenario for graceful degradation under a per-pair
    verification budget. *)

val truncate_file : string -> keep_bytes:int -> unit
(** Truncates a file in place — corrupts a checkpoint journal for the
    torn-journal scenarios. *)

val fresh_journal : unit -> string
(** A fresh non-existent temp path for a checkpoint journal. *)

type server_kill_report = {
  server_killed : bool;
      (** the injected crash fired (false when there are fewer adds than
          the kill point) *)
  acked : int;  (** adds acknowledged before the crash *)
  expected : int;
      (** adds that must survive the restart: [acked], minus one when the
          journal tail was torn (that record was a partial write) *)
  replayed : int;  (** trees in the restarted store *)
  answers_match : bool;
      (** the restarted store answers every probe query bit-identically
          to a store fed exactly the expected prefix, and
          [replayed = expected] *)
}

val run_server_kill_and_restart :
  ?domains:int ->
  ?kill_at_add:int ->
  ?tear_tail:bool ->
  trees:Tsj_tree.Tree.t array ->
  queries:Tsj_tree.Tree.t array ->
  tau:int ->
  unit ->
  server_kill_report
(** Crash-safety scenario for the service's journaled ADD path: feed
    [trees] into a {!Tsj_server.Store}, crash it via the
    [server.journal] hit point at add [kill_at_add] (default 1,
    abandoning the store without a close), optionally tear the last
    journal record ([tear_tail]), restart from disk and compare query
    answers against a reference store fed the surviving prefix.  A
    correct implementation yields [answers_match = true].  The temp
    store directory is removed afterwards. *)
