(* tsj — command-line interface to the tree similarity join library.

   Subcommands:
     ted        exact tree edit distance between two bracket trees
     join       similarity self-join over a file of bracket trees
     gen        generate a synthetic dataset to a file
     partition  show the delta-partitioning of a tree
     search     similarity search / top-k over an indexed collection
     serve      run the fault-tolerant similarity-search service
     query      query (or administer) a running serve instance
     fsck       verify (and optionally repair) a state directory offline
     bench      run the paper-figure experiments *)

open Cmdliner

module Bracket = Tsj_tree.Bracket
module Types = Tsj_join.Types

type format = Bracket_fmt | Sexp_fmt | Xml_fmt

let format_arg =
  Cmdliner.Arg.(
    value
    & opt (enum [ ("bracket", Bracket_fmt); ("sexp", Sexp_fmt); ("xml", Xml_fmt) ]) Bracket_fmt
    & info [ "format" ]
        ~doc:"Input format: bracket ({a{b}}), sexp (Penn Treebank) or xml.")

let load_trees ?(format = Bracket_fmt) path =
  let result =
    match format with
    | Bracket_fmt -> Bracket.load_file path
    | Sexp_fmt -> Tsj_tree.Sexp_format.load_file ~drop_words:true path
    | Xml_fmt ->
      (match In_channel.with_open_bin path In_channel.input_all with
      | exception Sys_error msg -> Error msg
      | contents ->
        Result.map
          (List.map (Tsj_xml.Xml.to_tree ~keep_text:true ~keep_attrs:false))
          (Tsj_xml.Xml_parser.parse_fragments contents))
  in
  match result with
  | Ok trees -> Array.of_list trees
  | Error msg ->
    (* Parse errors carry "line L, column C"; exit 2 = bad input. *)
    Printf.eprintf "tsj: cannot load %s: %s\n" path msg;
    exit 2

(* Lenient load for --skip-malformed: unparseable records become
   [Malformed] quarantine records instead of failing the run.  [q_i] is
   the ordinal of the skipped record among the errors (the record never
   received a tree index). *)
let load_trees_lenient ~format path =
  let lenient =
    match format with
    | Bracket_fmt -> Bracket.load_file_lenient path
    | Xml_fmt ->
      (match In_channel.with_open_bin path In_channel.input_all with
      | exception Sys_error msg -> Error msg
      | contents ->
        let docs, errors = Tsj_xml.Xml_parser.parse_fragments_lenient contents in
        Ok (List.map (Tsj_xml.Xml.to_tree ~keep_text:true ~keep_attrs:false) docs, errors))
    | Sexp_fmt ->
      Printf.eprintf "tsj: --skip-malformed is not supported for the sexp format\n";
      exit 2
  in
  match lenient with
  | Error msg ->
    Printf.eprintf "tsj: cannot load %s: %s\n" path msg;
    exit 2
  | Ok (trees, errors) ->
    let malformed =
      List.mapi
        (fun k (line, col, message) ->
          { Types.q_i = k; q_j = None; q_reason = Types.Malformed { line; col; message } })
        errors
    in
    if malformed <> [] then
      Printf.eprintf "tsj: %s: skipped %d malformed record(s)\n" path
        (List.length malformed);
    (Array.of_list trees, malformed)

let parse_tree_arg s =
  (* Accept either a literal bracket tree or @file containing one. *)
  let text =
    if String.length s > 0 && s.[0] = '@' then
      In_channel.with_open_text (String.sub s 1 (String.length s - 1)) In_channel.input_all
    else s
  in
  match Bracket.of_string text with
  | Ok t -> t
  | Error msg ->
    Printf.eprintf "tsj: bad tree %S: %s\n" s msg;
    exit 2

(* --- ted --- *)

let ted_cmd =
  let t1 =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TREE1"
           ~doc:"First tree in bracket notation (or @file).")
  in
  let t2 =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"TREE2"
           ~doc:"Second tree in bracket notation (or @file).")
  in
  let algorithm =
    Arg.(value & opt (enum [ ("hybrid", Tsj_ted.Ted.Hybrid); ("left", Tsj_ted.Ted.Zs_left);
                             ("right", Tsj_ted.Ted.Zs_right); ("naive", Tsj_ted.Ted.Naive) ])
           Tsj_ted.Ted.Hybrid
         & info [ "algorithm"; "a" ] ~doc:"TED algorithm: hybrid, left, right or naive.")
  in
  let run t1 t2 algorithm =
    let a = parse_tree_arg t1 and b = parse_tree_arg t2 in
    Printf.printf "%d\n" (Tsj_ted.Ted.distance ~algorithm a b)
  in
  Cmd.v
    (Cmd.info "ted" ~doc:"Exact tree edit distance between two trees")
    Term.(const run $ t1 $ t2 $ algorithm)

(* --- join --- *)

let method_conv =
  let parse s =
    match Tsj_harness.Methods.of_name s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown method %S" s))
  in
  Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt (Tsj_harness.Methods.name m))

let join_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"File of bracket trees (one per line; # comments allowed).")
  in
  let tau =
    Arg.(value & opt int 1 & info [ "tau"; "t" ] ~doc:"TED threshold.")
  in
  let method_ =
    Arg.(value & opt method_conv Tsj_harness.Methods.Prt
         & info [ "method"; "m" ] ~doc:"Join method: NL, STR, SET, PRT, PRT-random, PRT-paper.")
  in
  let show_pairs =
    Arg.(value & flag & info [ "pairs"; "p" ] ~doc:"Print the joined tree pairs.")
  in
  let metric =
    Arg.(value
         & opt (enum [ ("ted", Tsj_join.Sweep.Ted); ("constrained", Tsj_join.Sweep.Constrained) ])
             Tsj_join.Sweep.Ted
         & info [ "metric" ] ~doc:"Distance metric: ted or constrained.")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ]
             ~doc:"OCaml domains for the PartSJ pipeline (default: the \
                   recommended count, honoring TSJ_DOMAINS; baselines are \
                   sequential).")
  in
  let time_budget =
    Arg.(value & opt (some float) None
         & info [ "time-budget" ] ~docv:"SECS"
             ~doc:"Wall-clock budget for the join; on expiry the join stops \
                   cooperatively and unprocessed work is reported as \
                   quarantined (PRT methods only).")
  in
  let pair_budget =
    Arg.(value & opt (some int) None
         & info [ "pair-budget" ] ~docv:"COST"
             ~doc:"Per-pair verification budget in cost units (|T1|*|T2|); a \
                   candidate pair over the budget is quarantined with its \
                   bound sandwich instead of verified (PRT methods only).")
  in
  let checkpoint_file =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Journal join progress to $(docv) after every block (PRT \
                   methods only).")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Resume from the --checkpoint journal if it exists; the \
                   resumed output is identical to an uninterrupted run.")
  in
  let skip_malformed =
    Arg.(value & flag
         & info [ "skip-malformed" ]
             ~doc:"Skip unparseable input records (reporting their line and \
                   column) instead of aborting; each skipped record is listed \
                   in the quarantine summary.")
  in
  let no_consing =
    Arg.(value & flag
         & info [ "no-consing" ]
             ~doc:"Disable subtree hash-consing and the cross-pair TED memo \
                   cache (PRT methods; ablation switch — the output is \
                   bit-identical either way).")
  in
  let run file tau method_ show_pairs format metric jobs time_budget pair_budget
      checkpoint_file resume skip_malformed no_consing =
    if tau < 0 then begin
      Printf.eprintf "tsj: tau must be non-negative\n";
      exit 2
    end;
    let domains =
      match jobs with
      | Some j when j >= 1 -> j
      | Some _ ->
        Printf.eprintf "tsj: -j must be >= 1\n";
        exit 2
      | None -> Tsj_join.Parallel.recommended_domains ()
    in
    if resume && checkpoint_file = None then begin
      Printf.eprintf "tsj: --resume requires --checkpoint FILE\n";
      exit 2
    end;
    if
      (time_budget <> None || pair_budget <> None || checkpoint_file <> None)
      && not (Tsj_harness.Methods.supports_resilience method_)
    then begin
      Printf.eprintf
        "tsj: --time-budget/--pair-budget/--checkpoint require a PRT method (got %s)\n"
        (Tsj_harness.Methods.name method_);
      exit 2
    end;
    let budget =
      match (time_budget, pair_budget) with
      | None, None -> None
      | _ ->
        (match
           Tsj_join.Budget.create ?time_budget_s:time_budget ?pair_cost_limit:pair_budget ()
         with
        | b -> Some b
        | exception Invalid_argument msg ->
          Printf.eprintf "tsj: %s\n" msg;
          exit 2)
    in
    let checkpoint =
      Option.map (fun path -> Tsj_join.Checkpoint.config ~resume path) checkpoint_file
    in
    let trees, malformed =
      if skip_malformed then load_trees_lenient ~format file
      else (load_trees ~format file, [])
    in
    let out =
      match
        match (metric, method_) with
        | Tsj_join.Sweep.Ted, m ->
          Tsj_harness.Methods.run ~domains ?budget ?checkpoint
            ~consing:(not no_consing) m ~trees ~tau
        | metric, Tsj_harness.Methods.Nl -> Tsj_join.Nested_loop.join ~metric ~trees ~tau ()
        | metric, Tsj_harness.Methods.Str -> Tsj_baselines.Str_join.join ~metric ~trees ~tau ()
        | metric, Tsj_harness.Methods.Set -> Tsj_baselines.Set_join.join ~metric ~trees ~tau ()
        | metric, _ ->
          Tsj_core.Partsj.join ~domains ~metric ?budget ?checkpoint
            ~consing:(not no_consing) ~trees ~tau ()
      with
      | out -> out
      | exception Invalid_argument msg ->
        (* e.g. a corrupt or mismatched --resume journal *)
        Printf.eprintf "tsj: %s\n" msg;
        exit 2
    in
    let out = { out with Types.quarantined = malformed @ out.Types.quarantined } in
    Format.printf "%a@." Types.pp_stats out.Types.stats;
    (match out.Types.quarantined with
    | [] -> ()
    | qs ->
      Printf.printf "quarantined: %d\n" (List.length qs);
      if show_pairs then
        List.iter (fun q -> Format.printf "  %a@." Types.pp_quarantined q) qs);
    if show_pairs then
      List.iter
        (fun p ->
          Printf.printf "%d\t%d\t%d\t%s\t%s\n" p.Types.i p.Types.j p.Types.distance
            (Bracket.to_string trees.(p.Types.i))
            (Bracket.to_string trees.(p.Types.j)))
        out.Types.pairs
  in
  Cmd.v
    (Cmd.info "join" ~doc:"Similarity self-join over a tree collection")
    Term.(const run $ file $ tau $ method_ $ show_pairs $ format_arg $ metric $ jobs
          $ time_budget $ pair_budget $ checkpoint_file $ resume $ skip_malformed
          $ no_consing)

(* --- gen --- *)

let gen_cmd =
  let output =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OUTPUT"
           ~doc:"Output file (bracket notation, one tree per line).")
  in
  let profile =
    Arg.(value & opt string "synthetic"
         & info [ "profile" ] ~doc:"Dataset profile: swissprot, treebank, sentiment or synthetic.")
  in
  let n = Arg.(value & opt int 1000 & info [ "count"; "n" ] ~doc:"Number of trees.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let fanout = Arg.(value & opt (some int) None & info [ "fanout"; "f" ] ~doc:"Override max fanout.") in
  let depth = Arg.(value & opt (some int) None & info [ "depth"; "d" ] ~doc:"Override max depth.") in
  let labels = Arg.(value & opt (some int) None & info [ "labels"; "l" ] ~doc:"Override label count.") in
  let size = Arg.(value & opt (some int) None & info [ "size"; "s" ] ~doc:"Override average tree size.") in
  let run output profile n seed fanout depth labels size =
    match Tsj_datagen.Profiles.find profile with
    | None ->
      Printf.eprintf "tsj: unknown profile %S\n" profile;
      exit 2
    | Some p ->
      let params = p.Tsj_datagen.Profiles.params in
      let params =
        {
          params with
          Tsj_datagen.Generator.max_fanout =
            Option.value fanout ~default:params.Tsj_datagen.Generator.max_fanout;
          max_depth = Option.value depth ~default:params.Tsj_datagen.Generator.max_depth;
          n_labels = Option.value labels ~default:params.Tsj_datagen.Generator.n_labels;
          avg_size = Option.value size ~default:params.Tsj_datagen.Generator.avg_size;
        }
      in
      let p = Tsj_datagen.Profiles.with_params p params in
      let trees = Tsj_datagen.Profiles.instantiate p ~seed ~n in
      Bracket.save_file output (Array.to_list trees);
      Printf.printf "wrote %s: %s\n" output (Tsj_datagen.Profiles.describe trees)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic tree dataset")
    Term.(const run $ output $ profile $ n $ seed $ fanout $ depth $ labels $ size)

(* --- partition --- *)

let partition_cmd =
  let tree =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TREE"
           ~doc:"Tree in bracket notation (or @file).")
  in
  let tau = Arg.(value & opt int 1 & info [ "tau"; "t" ] ~doc:"TED threshold (delta = 2*tau+1).") in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of text.") in
  let run tree tau dot =
    let t = parse_tree_arg tree in
    let delta = (2 * tau) + 1 in
    let b = Tsj_tree.Binary_tree.of_tree t in
    if b.Tsj_tree.Binary_tree.size < delta then begin
      Printf.printf
        "tree has %d nodes < delta = %d: too small to partition (kept whole by the join)\n"
        b.Tsj_tree.Binary_tree.size delta;
      exit 0
    end;
    let p = Tsj_core.Partition.partition b ~delta in
    if dot then begin
      print_string
        (Tsj_tree.Dot.of_partition b ~assignment:p.Tsj_core.Partition.assignment);
      exit 0
    end;
    Printf.printf "delta = %d, gamma (max-min component size) = %d\n" delta
      p.Tsj_core.Partition.gamma;
    let subs = Tsj_core.Subgraph.of_partition ~tree_id:0 p in
    Array.iter
      (fun s ->
        let l, ll, lr = Tsj_core.Subgraph.label_key s in
        Printf.printf
          "subgraph k=%d: root node %d (general postorder %d), %d nodes, twig key (%s,%s,%s)\n"
          s.Tsj_core.Subgraph.rank s.Tsj_core.Subgraph.root s.Tsj_core.Subgraph.root_gpost
          s.Tsj_core.Subgraph.n_nodes (Tsj_tree.Label.name l) (Tsj_tree.Label.name ll)
          (Tsj_tree.Label.name lr))
      subs;
    Printf.printf "bridging edges: %s\n"
      (String.concat ", "
         (List.map
            (fun (a, c) -> Printf.sprintf "%d->%d" a c)
            (Tsj_core.Partition.bridging_edges p)))
  in
  Cmd.v
    (Cmd.info "partition" ~doc:"Show the delta-partitioning PartSJ would index for a tree")
    Term.(const run $ tree $ tau $ dot)

(* --- search --- *)

let search_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Indexed collection: file of bracket trees.")
  in
  let query =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Query tree in bracket notation (or @file).")
  in
  let tau = Arg.(value & opt int 2 & info [ "tau"; "t" ] ~doc:"TED threshold.") in
  let top =
    Arg.(value & opt (some int) None
         & info [ "top"; "k" ] ~doc:"Return only the k nearest trees.")
  in
  let run file query tau top format =
    if tau < 0 then begin
      Printf.eprintf "tsj: tau must be non-negative\n";
      exit 2
    end;
    let trees = load_trees ~format file in
    let q = parse_tree_arg query in
    let idx = Tsj_core.Search.build ~tau trees in
    let hits =
      match top with
      | Some k -> Tsj_core.Search.nearest ~k idx q
      | None -> Tsj_core.Search.query idx q
    in
    List.iter
      (fun (i, d) -> Printf.printf "%d\t%d\t%s\n" i d (Bracket.to_string trees.(i)))
      hits
  in
  Cmd.v
    (Cmd.info "search" ~doc:"Similarity search / top-k over an indexed collection")
    Term.(const run $ file $ query $ tau $ top $ format_arg)

(* --- serve --- *)

let addr_conv =
  let parse s =
    match Tsj_server.Protocol.addr_of_string s with
    | Ok a -> Ok a
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun fmt a ->
      Format.pp_print_string fmt (Tsj_server.Protocol.addr_to_string a))

let group_conv =
  let parse s =
    let parts =
      String.split_on_char ',' s |> List.map String.trim
      |> List.filter (fun p -> p <> "")
    in
    if parts = [] then Error (`Msg "empty shard group")
    else
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest -> (
          match Tsj_server.Protocol.addr_of_string p with
          | Ok a -> go (a :: acc) rest
          | Error msg -> Error (`Msg msg))
      in
      go [] parts
  in
  Arg.conv
    ( parse,
      fun fmt addrs ->
        Format.pp_print_string fmt
          (String.concat "," (List.map Tsj_server.Protocol.addr_to_string addrs))
    )

let serve_cmd =
  let addr =
    Arg.(required & pos 0 (some addr_conv) None & info [] ~docv:"ADDR"
           ~doc:"Listen address: a Unix socket path or host:port.")
  in
  let tau = Arg.(value & opt int 2 & info [ "tau"; "t" ] ~doc:"Index TED threshold.") in
  let dir =
    Arg.(value & opt (some string) None
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"State directory (snapshot + journal); without it the index \
                   is ephemeral.  An existing snapshot's tau overrides --tau.")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ]
           ~doc:"OCaml domains for per-query verification.")
  in
  let max_inflight =
    Arg.(value & opt int 64
         & info [ "max-inflight" ]
             ~doc:"Admission watermark: work-bearing requests beyond it are \
                   shed with BUSY.")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECS"
             ~doc:"Per-request deadline; an over-deadline query returns a \
                   partial (degraded) answer with bound sandwiches.")
  in
  let drain_budget =
    Arg.(value & opt float 5.0
         & info [ "drain-budget" ] ~docv:"SECS"
             ~doc:"How long a drain (DRAIN request or SIGTERM) waits for \
                   inflight work before cancelling it.")
  in
  let preload =
    Arg.(value & opt (some file) None
         & info [ "preload" ] ~docv:"FILE"
             ~doc:"Seed the index with a file of bracket trees before serving.")
  in
  let replica_of =
    Arg.(value & opt_all addr_conv []
         & info [ "replica-of" ] ~docv:"ADDR"
             ~doc:"Start as a replica streaming the journal from this primary \
                   (repeatable; peers are tried in order with backoff).  A \
                   replica refuses writes with FENCED until promoted.")
  in
  let quorum =
    Arg.(value & opt int 1
         & info [ "quorum" ] ~docv:"N"
             ~doc:"Durable copies (including the own journal) required before \
                   an ADD is acknowledged; 1 means single-node semantics.")
  in
  let max_batch =
    Arg.(value & opt int 64
         & info [ "max-batch" ] ~docv:"N"
             ~doc:"Group-commit ceiling: concurrent ADDs are coalesced into \
                   batches of up to N sharing one journal append, one fsync \
                   and one quorum round.  1 disables batching.")
  in
  let dedup =
    Arg.(value & flag
         & info [ "dedup" ]
             ~doc:"Whole-tree deduplication: a seq-less ADD of a tree the store \
                   already holds is answered as the original tree's id and is \
                   neither journaled nor indexed.  STATS reports the \
                   suppressed count as dedup=.")
  in
  let scrub_interval =
    Arg.(value & opt float 0.0
         & info [ "scrub-interval" ] ~docv:"SECS"
             ~doc:"Background integrity scrub period: every tick re-verifies a \
                   slice of the journal (checksums, seals, content vs the \
                   in-memory index) and repairs disk-level rot by converging \
                   disk to memory.  0 (the default) disables the scrubber.")
  in
  let scrub_budget =
    Arg.(value & opt int 128
         & info [ "scrub-budget" ] ~docv:"N"
             ~doc:"Journal records re-verified per scrub tick.")
  in
  let quarantine =
    Arg.(value & flag
         & info [ "quarantine" ]
             ~doc:"Open degraded instead of refusing when startup finds \
                   unhealable corruption: the rotted journal suffix or \
                   snapshot is moved aside (.quarantine), counted in STATS, \
                   and the surviving prefix is served.")
  in
  let rate =
    Arg.(value & opt (some float) None
         & info [ "rate" ] ~docv:"RPS"
             ~doc:"Fair admission: per-connection token bucket refilled at \
                   RPS work requests per second.  A greedy connection \
                   exhausts only its own bucket (its excess is shed with \
                   BUSY and a retry-after hint); conforming connections are \
                   untouched.  Off by default.")
  in
  let burst =
    Arg.(value & opt int 32
         & info [ "burst" ] ~docv:"N"
             ~doc:"Token-bucket capacity: how many work requests a fresh \
                   connection may burst before --rate pacing kicks in.")
  in
  let idle_timeout =
    Arg.(value & opt (some float) None
         & info [ "idle-timeout" ] ~docv:"SECS"
             ~doc:"Close (and count as reaped=) connections idle for this \
                   long with no inflight work.  Off by default.")
  in
  let max_conns =
    Arg.(value & opt (some int) None
         & info [ "max-conns" ] ~docv:"N"
             ~doc:"Hard cap on concurrent connections; excess accepts are \
                   closed immediately.  Unlimited by default.")
  in
  let hedge =
    Arg.(value & opt (some float) None
         & info [ "hedge" ] ~docv:"SECS"
             ~doc:"Router mode: hedge a shard read still unanswered after \
                   SECS with a second leg on the rotated replica list; the \
                   first well-formed reply wins.  Off by default.")
  in
  let router =
    Arg.(value & flag
         & info [ "router" ]
             ~doc:"Run a scatter-gather router over --shard-group replica \
                   groups instead of a single-node server.  The router speaks \
                   the same wire grammar, so existing clients are unchanged.")
  in
  let shard_group =
    Arg.(value & opt_all group_conv []
         & info [ "shard-group" ] ~docv:"ADDRS"
             ~doc:"Replica group serving the next shard: comma-separated \
                   addresses, primary first (repeatable; the i-th option \
                   serves shard i).  Implies --router.")
  in
  let shards =
    Arg.(value & opt (some int) None
         & info [ "shards" ] ~docv:"N"
             ~doc:"Sanity check: fail unless exactly N --shard-group options \
                   were given.")
  in
  let band =
    Arg.(value & opt (some int) None
         & info [ "band" ] ~docv:"W"
             ~doc:"Size-band width of the shard map (router mode); defaults \
                   to 2*tau + 1 — one probe window per band.")
  in
  let ledger =
    Arg.(value & opt (some string) None
         & info [ "ledger" ] ~docv:"FILE"
             ~doc:"Router ledger journal (gid -> shard bindings, checksummed); \
                   without it the gid space restarts empty and is rebuilt by \
                   reconciliation.")
  in
  let run_router addr tau shard_groups shards band ledger deadline hedge =
    if shard_groups = [] then begin
      Printf.eprintf "tsj: --router needs at least one --shard-group\n";
      exit 2
    end;
    (match shards with
    | Some n when n <> List.length shard_groups ->
      Printf.eprintf "tsj: --shards %d but %d --shard-group options given\n" n
        (List.length shard_groups);
      exit 2
    | _ -> ());
    let groups = Array.of_list shard_groups in
    let map =
      try Tsj_server.Shard.create ~shards:(Array.length groups) ?band ~tau ()
      with Invalid_argument msg ->
        Printf.eprintf "tsj: %s\n" msg;
        exit 2
    in
    let config =
      { Tsj_server.Router.map; tau; groups;
        timeout_s = Option.value deadline ~default:2.0;
        attempts = 3; ledger; seed = 42;
        hedge_s = hedge; margin_ms = 50 }
    in
    match Tsj_server.Router.create config with
    | Error msg ->
      Printf.eprintf "tsj: cannot start router: %s\n" msg;
      exit 2
    | Ok router -> (
      match Tsj_server.Router.start_front router addr with
      | Error msg ->
        Tsj_server.Router.close router;
        Printf.eprintf "tsj: cannot bind router front-end: %s\n" msg;
        exit 2
      | Ok front ->
        Printf.printf
          "tsj: routing %d shards on %s (tau=%d, band=%d, %s, deadline=%.1fs)\n%!"
          (Array.length groups)
          (Tsj_server.Protocol.addr_to_string addr)
          tau map.Tsj_server.Shard.band
          (match ledger with Some f -> "ledger=" ^ f | None -> "no ledger")
          config.Tsj_server.Router.timeout_s;
        let stop = Atomic.make false in
        let on_signal _ = Atomic.set stop true in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
        Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
        while not (Atomic.get stop) do
          Unix.sleepf 0.2
        done;
        Tsj_server.Router.stop_front front;
        let s = Tsj_server.Router.stats router in
        Tsj_server.Router.close router;
        Printf.printf
          "tsj: router stopped (trees=%d queries=%d adds=%d degraded=%d \
           errors=%d)\n"
          s.Tsj_server.Protocol.trees s.Tsj_server.Protocol.queries
          s.Tsj_server.Protocol.adds s.Tsj_server.Protocol.degraded
          s.Tsj_server.Protocol.errors)
  in
  let run addr tau dir jobs max_inflight deadline drain_budget preload replica_of
      quorum max_batch dedup scrub_interval scrub_budget quarantine rate burst
      idle_timeout max_conns hedge router shard_groups shards band ledger format =
    if tau < 0 then begin
      Printf.eprintf "tsj: tau must be non-negative\n";
      exit 2
    end;
    if scrub_interval < 0.0 then begin
      Printf.eprintf "tsj: --scrub-interval must be >= 0\n";
      exit 2
    end;
    if router || shard_groups <> [] then
      run_router addr tau shard_groups shards band ledger deadline hedge
    else begin
    if jobs < 1 then begin
      Printf.eprintf "tsj: -j must be >= 1\n";
      exit 2
    end;
    if quorum < 1 then begin
      Printf.eprintf "tsj: --quorum must be >= 1\n";
      exit 2
    end;
    if max_batch < 1 then begin
      Printf.eprintf "tsj: --max-batch must be >= 1\n";
      exit 2
    end;
    let config =
      { (Tsj_server.Server.default_config addr ~tau) with
        Tsj_server.Server.dir;
        domains = jobs;
        max_inflight;
        deadline_s = deadline;
        drain_budget_s = drain_budget;
        handle_sigterm = true;
        quorum;
        max_batch;
        dedup;
        sync_from = replica_of;
        primary = replica_of = [];
        scrub_interval_s =
          (if scrub_interval > 0.0 then Some scrub_interval else None);
        scrub_budget;
        quarantine;
        rate;
        burst;
        idle_timeout_s = idle_timeout;
        max_conns;
      }
    in
    match Tsj_server.Server.create config with
    | Error msg ->
      Printf.eprintf "tsj: cannot start server: %s\n" msg;
      exit 2
    | Ok server ->
      (match preload with
      | None -> ()
      | Some file ->
        let trees = load_trees ~format file in
        Array.iter
          (fun t -> ignore (Tsj_server.Store.add (Tsj_server.Server.store server) t))
          trees;
        Printf.printf "preloaded %d trees\n%!" (Array.length trees));
      Printf.printf "tsj: serving on %s (tau=%d%s, %s, quorum=%d)\n%!"
        (Tsj_server.Protocol.addr_to_string addr)
        (Tsj_server.Store.tau (Tsj_server.Server.store server))
        (match dir with Some d -> ", dir=" ^ d | None -> ", ephemeral")
        (if replica_of = [] then "primary" else "replica")
        quorum;
      Tsj_server.Server.start server;
      Tsj_server.Server.wait server;
      let s = Tsj_server.Server.stats server in
      Printf.printf
        "tsj: drained (queries=%d adds=%d shed=%d degraded=%d errors=%d quarantined=%d)\n"
        s.Tsj_server.Protocol.queries s.Tsj_server.Protocol.adds
        s.Tsj_server.Protocol.shed s.Tsj_server.Protocol.degraded
        s.Tsj_server.Protocol.errors s.Tsj_server.Protocol.quarantined
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the fault-tolerant similarity-search service or, with \
             --router, the scatter-gather router of a sharded cluster")
    Term.(const run $ addr $ tau $ dir $ jobs $ max_inflight $ deadline
          $ drain_budget $ preload $ replica_of $ quorum $ max_batch $ dedup
          $ scrub_interval $ scrub_budget $ quarantine $ rate $ burst
          $ idle_timeout $ max_conns $ hedge
          $ router $ shard_group $ shards $ band $ ledger $ format_arg)

(* --- promote --- *)

let promote_cmd =
  let remote =
    Arg.(required & pos 0 (some addr_conv) None & info [] ~docv:"ADDR"
           ~doc:"Replica to promote: a Unix socket path or host:port.")
  in
  let timeout =
    Arg.(value & opt float 10.0
         & info [ "timeout" ] ~docv:"SECS" ~doc:"Socket send/receive timeout.")
  in
  let run remote timeout =
    match Tsj_server.Client.connect ~timeout_s:timeout remote with
    | Error msg ->
      Printf.eprintf "tsj: cannot connect: %s\n" msg;
      exit 3
    | Ok conn ->
      let result = Tsj_server.Client.request conn Tsj_server.Protocol.Promote in
      Tsj_server.Client.close conn;
      (match result with
      | Ok (Tsj_server.Protocol.Promoted epoch) ->
        Printf.printf "promoted: epoch %d\n" epoch
      | Ok (Tsj_server.Protocol.Err msg) ->
        Printf.eprintf "tsj: promote refused: %s\n" msg;
        exit 1
      | Ok other ->
        Printf.eprintf "tsj: unexpected reply: %s\n"
          (Tsj_server.Protocol.render_response other);
        exit 1
      | Error msg ->
        Printf.eprintf "tsj: promote failed: %s\n" msg;
        exit 3)
  in
  Cmd.v
    (Cmd.info "promote"
       ~doc:"Promote a replica to primary (bumps the fencing epoch)")
    Term.(const run $ remote $ timeout)

(* --- query (remote) --- *)

let query_cmd =
  let remote =
    Arg.(required & opt (some addr_conv) None
         & info [ "remote"; "r" ] ~docv:"ADDR"
             ~doc:"Server address: a Unix socket path or host:port.")
  in
  let tree =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"TREE"
           ~doc:"Tree in bracket notation (or @file); required unless \
                 --stats, --health or --drain.")
  in
  let tau = Arg.(value & opt int 0 & info [ "tau"; "t" ] ~doc:"Query TED threshold.") in
  let top =
    Arg.(value & opt (some int) None
         & info [ "top"; "k" ] ~doc:"Top-k search instead of a threshold query.")
  in
  let add = Arg.(value & flag & info [ "add" ] ~doc:"ADD the tree instead of querying.") in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Fetch server statistics.") in
  let health = Arg.(value & flag & info [ "health" ] ~doc:"Health check.") in
  let drain = Arg.(value & flag & info [ "drain" ] ~doc:"Ask the server to drain and exit.") in
  let timeout =
    Arg.(value & opt float 10.0
         & info [ "timeout" ] ~docv:"SECS" ~doc:"Socket send/receive timeout.")
  in
  let retries =
    Arg.(value & opt int 4
         & info [ "retries" ]
             ~doc:"Attempts on transport failure or BUSY (exponential backoff \
                   with jitter).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Seed of the backoff jitter PRNG.")
  in
  let deadline_ms =
    Arg.(value & opt (some int) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Announce a remaining budget of MS milliseconds on the \
                   request (the @<ms> wire token).  The budget shrinks \
                   across retries; a server or router it reaches expired \
                   answers ERR deadline expired.")
  in
  let run remote tree tau top add stats health drain timeout retries seed
      deadline_ms =
    let request =
      if stats then Tsj_server.Protocol.Stats
      else if health then Tsj_server.Protocol.Health
      else if drain then Tsj_server.Protocol.Drain
      else
        match tree with
        | None ->
          Printf.eprintf "tsj: a TREE argument is required (or --stats/--health/--drain)\n";
          exit 2
        | Some s ->
          let t = parse_tree_arg s in
          if add then Tsj_server.Protocol.Add { seq = None; tree = t }
          else (
            match top with
            | Some k -> Tsj_server.Protocol.Knn { k; tree = t }
            | None -> Tsj_server.Protocol.Query { tau; tree = t })
    in
    let rng = Tsj_util.Prng.create seed in
    match
      Tsj_server.Client.request_with_retries ~attempts:retries ~timeout_s:timeout
        ?deadline_ms ~rng remote request
    with
    | Error msg ->
      Printf.eprintf "tsj: %s\n" msg;
      exit 1
    | Ok (Tsj_server.Protocol.Err reason) ->
      Printf.eprintf "tsj: server error: %s\n" reason;
      exit 1
    | Ok (Tsj_server.Protocol.Busy _) ->
      Printf.eprintf "tsj: server busy (request shed after %d attempts)\n" retries;
      exit 3
    | Ok (Tsj_server.Protocol.Hits { degraded; hits; unverified }) ->
      List.iter (fun (i, d) -> Printf.printf "%d\t%d\n" i d) hits;
      List.iter
        (fun (i, lo, hi) -> Printf.printf "%d\t%d..%d\tunverified\n" i lo hi)
        unverified;
      if degraded then
        Printf.eprintf "tsj: degraded answer (deadline expired; %d candidates unverified)\n"
          (List.length unverified)
    | Ok (Tsj_server.Protocol.Added { id; partners }) ->
      Printf.printf "added %d (%d partners)\n" id (List.length partners);
      List.iter (fun (i, d) -> Printf.printf "%d\t%d\n" i d) partners
    | Ok (Tsj_server.Protocol.Fenced epoch) ->
      Printf.eprintf "tsj: write refused: a primary at epoch %d exists (FENCED)\n" epoch;
      exit 4
    | Ok (Tsj_server.Protocol.Redirect addr) ->
      Printf.eprintf "tsj: redirected to the primary at %s\n" addr;
      exit 5
    | Ok (Tsj_server.Protocol.Stats_reply _ as r) | Ok (Tsj_server.Protocol.Health_reply _ as r)
    | Ok (Tsj_server.Protocol.Drained as r) | Ok (Tsj_server.Protocol.Promoted _ as r)
    | Ok ((Tsj_server.Protocol.Sync_stream _ | Tsj_server.Protocol.Record _) as r)
    | Ok (Tsj_server.Protocol.Tree_reply _ as r)
    | Ok (Tsj_server.Protocol.Digest_reply _ as r)
    | Ok (Tsj_server.Protocol.Hello_reply _ as r) ->
      print_endline (Tsj_server.Protocol.render_response r)
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Query (or administer) a running tsj serve instance")
    Term.(const run $ remote $ tree $ tau $ top $ add $ stats $ health $ drain
          $ timeout $ retries $ seed $ deadline_ms)

(* --- fsck --- *)

let fsck_cmd =
  let dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
           ~doc:"State directory of a tsj serve instance (snapshot + journal).")
  in
  let ledger =
    Arg.(value & opt (some string) None
         & info [ "ledger" ] ~docv:"FILE"
             ~doc:"Also verify a router ledger journal.")
  in
  let repair =
    Arg.(value & flag
         & info [ "repair" ]
             ~doc:"Repair instead of just reporting: unrepairable journal \
                   records and ledger suffixes are moved aside (.quarantine), \
                   the surviving state is rewritten and resealed.")
  in
  let tau =
    Arg.(value & opt int 2
         & info [ "tau"; "t" ]
             ~doc:"TED threshold used when the directory has no snapshot to \
                   read it from (an existing snapshot's tau wins).")
  in
  (* CRC-checked line: "<payload> <fnv1a64(payload)>" *)
  let line_crc_ok line =
    match String.rindex_opt line ' ' with
    | None -> false
    | Some i ->
      Tsj_util.Text.fnv1a64_hex (String.sub line 0 i)
      = String.sub line (i + 1) (String.length line - i - 1)
  in
  let read_lines path =
    In_channel.with_open_bin path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  let check_seal name path findings =
    match Tsj_server.Integrity.check_seal path with
    | Ok 0 -> Printf.printf "%-18s never sealed\n" name
    | Ok bytes -> Printf.printf "%-18s seal ok (%d bytes covered)\n" name bytes
    | Error detail ->
      Printf.printf "%-18s SEAL MISMATCH: %s\n" name detail;
      incr findings
    | exception Tsj_util.Durable.Disk_fault f ->
      Printf.printf "%-18s READ FAULT: %s\n" name (Tsj_util.Durable.fault_to_string f);
      incr findings
  in
  let run dir ledger repair tau =
    if not (Sys.file_exists dir && Sys.is_directory dir) then begin
      Printf.eprintf "tsj: %s is not a directory\n" dir;
      exit 2
    end;
    let findings = ref 0 and torn = ref 0 in
    (* journal: per-record CRCs; an invalid line with valid lines after
       it is corruption, an invalid final line is a torn tail (a crashed
       append, dropped benignly at the next open) *)
    let journal = Filename.concat dir "journal" in
    if Sys.file_exists journal then begin
      let lines = read_lines journal in
      let records =
        match lines with
        | first :: rest
          when String.length first >= 6 && String.sub first 0 6 = "epoch " ->
          if line_crc_ok first then
            Printf.printf "%-18s header ok\n" "journal"
          else begin
            Printf.printf "%-18s HEADER CORRUPT\n" "journal";
            incr findings
          end;
          rest
        | l -> l
      in
      let n = List.length records in
      let bad = List.filter (fun l -> not (line_crc_ok l)) records in
      let last_bad = match records with
        | [] -> false
        | l -> not (line_crc_ok (List.nth l (n - 1)))
      in
      (match List.length bad with
      | 0 -> Printf.printf "%-18s %d records, every checksum ok\n" "journal" n
      | 1 when last_bad ->
        incr torn;
        Printf.printf
          "%-18s %d records, torn tail (1 partial append; dropped at next open)\n"
          "journal" n
      | k ->
        findings := !findings + (if last_bad then k - 1 else k);
        if last_bad then incr torn;
        Printf.printf "%-18s %d records, %d CORRUPT mid-file\n" "journal" n
          (if last_bad then k - 1 else k));
      check_seal "journal.seal" journal findings
    end
    else Printf.printf "%-18s missing (nothing journaled)\n" "journal";
    (* snapshot: the seal is its only integrity cover, but it must also
       still parse *)
    let snapshot = Filename.concat dir "snapshot" in
    if Sys.file_exists snapshot then begin
      (match
         Tsj_core.Search.collection_of_string ~allow_duplicates:true
           (In_channel.with_open_bin snapshot In_channel.input_all)
       with
      | Ok (stau, trees) ->
        Printf.printf "%-18s %d trees, tau=%d, parses ok\n" "snapshot"
          (Array.length trees) stau
      | Error msg ->
        Printf.printf "%-18s UNPARSEABLE: %s\n" "snapshot" msg;
        incr findings);
      check_seal "snapshot.seal" snapshot findings
    end
    else Printf.printf "%-18s missing (journal-only store)\n" "snapshot";
    (* optional router ledger: line CRCs, dense gids, seal *)
    (match ledger with
    | None -> ()
    | Some path when not (Sys.file_exists path) ->
      Printf.printf "%-18s missing\n" "ledger"
    | Some path ->
      let lines = read_lines path in
      let n = List.length lines in
      (* the longest valid dense prefix; anything after the first bad
         line is untrusted *)
      let rec prefix acc gid = function
        | [] -> (List.rev acc, [])
        | l :: rest ->
          let ok =
            line_crc_ok l
            && (match String.split_on_char ' ' l with
               | "map" :: g :: _ -> int_of_string_opt g = Some gid
               | _ -> false)
          in
          if ok then prefix (l :: acc) (gid + 1) rest
          else (List.rev acc, l :: rest)
      in
      let good, rest = prefix [] 0 lines in
      (match rest with
      | [] -> Printf.printf "%-18s %d bindings, every checksum ok\n" "ledger" n
      | [ _ ] ->
        incr torn;
        Printf.printf "%-18s %d bindings, torn tail (1 partial append)\n"
          "ledger" (List.length good)
      | _ ->
        findings := !findings + List.length rest;
        Printf.printf "%-18s %d bindings, %d CORRUPT/untrusted from line %d\n"
          "ledger" n (List.length rest) (List.length good));
      check_seal "ledger.seal" path findings;
      if repair && rest <> [] then begin
        Out_channel.with_open_gen
          [ Open_append; Open_creat ] 0o644 (path ^ ".quarantine")
          (fun oc -> List.iter (fun l -> Printf.fprintf oc "%s\n" l) rest);
        let tmp = path ^ ".tmp" in
        Out_channel.with_open_bin tmp (fun oc ->
            List.iter (fun l -> Printf.fprintf oc "%s\n" l) good);
        Tsj_util.Durable.rename tmp path;
        Tsj_server.Integrity.write_seal path;
        Printf.printf
          "%-18s repaired: %d bindings kept, %d moved to %s.quarantine\n"
          "ledger" (List.length good) (List.length rest) path
      end);
    if repair then begin
      (* converge disk to the best recoverable state: quarantine what
         cannot be replayed, splice nothing (no heal source offline),
         then flush a fresh sealed snapshot + empty journal *)
      match Tsj_server.Store.open_ ~dir ~quarantine:true ~tau () with
      | Error msg ->
        Printf.eprintf "tsj: unrepairable: %s\n" msg;
        exit 2
      | Ok store ->
        Tsj_server.Store.flush store;
        let _, crc_failures, repaired, quarantined =
          Tsj_server.Store.scrub_counters store
        in
        Printf.printf
          "repaired: %d trees survive (crc_failures=%d repaired=%d \
           quarantined=%d), merkle root %s\n"
          (Tsj_server.Store.n_trees store)
          crc_failures repaired quarantined
          (Tsj_server.Store.merkle_root store)
        (* no close: a close would be a second (redundant) flush *)
    end
    else if !findings > 0 then begin
      Printf.printf "%d corruption finding(s); rerun with --repair to quarantine\n"
        !findings;
      exit 2
    end
    else begin
      (* clean (modulo a torn tail the next open drops): report the
         authoritative identity of the store without mutating anything *)
      if !torn = 0 then begin
        match Tsj_server.Store.open_ ~dir ~tau () with
        | Ok store ->
          Printf.printf "clean: %d trees, merkle root %s\n"
            (Tsj_server.Store.n_trees store)
            (Tsj_server.Store.merkle_root store)
          (* abandoned without close on purpose: fsck must not rewrite *)
        | Error msg ->
          Printf.printf "CHECKSUMS CLEAN BUT UNREPLAYABLE: %s\n" msg;
          exit 2
      end
      else Printf.printf "clean apart from the torn tail\n"
    end
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:"Verify the integrity of a tsj state directory offline \
             (checksums, seals, snapshot parse; exit 2 on corruption), \
             optionally repairing by quarantine")
    Term.(const run $ dir $ ledger $ repair $ tau)

(* --- bench --- *)

let bench_cmd =
  let scale = Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Dataset size multiplier.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ]
             ~doc:"OCaml domains for the PartSJ runs (the perf experiment \
                   always compares against the recommended count).")
  in
  let what =
    Arg.(value & pos_all string [ "all" ] & info [] ~docv:"EXPERIMENT"
           ~doc:"fig10, fig12, fig14, ablation, parallel, perf, dag, \
                 streaming, resilience, serving, serving-soak, overload, \
                 replication, sharding, integrity or all (serving-soak is a \
                 minute-long sustained-load bench and is not part of all).")
  in
  let run scale seed jobs what =
    if jobs < 1 then begin
      Printf.eprintf "tsj: -j must be >= 1\n";
      exit 2
    end;
    let config =
      { Tsj_harness.Experiments.default_config with
        Tsj_harness.Experiments.scale; seed; domains = jobs }
    in
    List.iter
      (fun name ->
        match name with
        | "fig10" | "fig11" -> Tsj_harness.Experiments.fig10_11 config
        | "fig12" | "fig13" -> Tsj_harness.Experiments.fig12_13 config
        | "fig14" | "tab1" -> Tsj_harness.Experiments.fig14 config
        | "ablation" -> Tsj_harness.Experiments.ablation config
        | "parallel" -> Tsj_harness.Experiments.parallel config
        | "perf" -> Tsj_harness.Experiments.perf config
        | "dag" -> Tsj_harness.Experiments.dag config
        | "streaming" -> Tsj_harness.Experiments.streaming config
        | "resilience" -> Tsj_harness.Experiments.resilience config
        | "serving" -> Tsj_harness.Experiments.serving config
        | "serving-soak" -> Tsj_harness.Experiments.serving_soak config
        | "overload" -> Tsj_harness.Experiments.overload config
        | "replication" -> Tsj_harness.Experiments.replication config
        | "sharding" -> Tsj_harness.Experiments.sharding config
        | "integrity" -> Tsj_harness.Experiments.integrity config
        | "all" -> Tsj_harness.Experiments.run_all config
        | other ->
          Printf.eprintf "tsj: unknown experiment %S\n" other;
          exit 2)
      what
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Re-run the paper's evaluation experiments")
    Term.(const run $ scale $ seed $ jobs $ what)

let () =
  let doc = "similarity joins over tree-structured data (PartSJ, VLDB 2015)" in
  let info = Cmd.info "tsj" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ ted_cmd; join_cmd; gen_cmd; partition_cmd; search_cmd; serve_cmd;
            promote_cmd; query_cmd; fsck_cmd; bench_cmd ]))
